// hulkv::snapshot: container format, archive traversal, Soc::save /
// restore / state_digest / reset.
//
// The load-bearing guarantee (DESIGN.md section 11): restore is exact.
// A SoC restored from a mid-run snapshot continues cycle-identically —
// same per-segment cycle counts, same trace events, same final state
// digest — as the uninterrupted run.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <vector>

#include "batch/batch.hpp"
#include "core/soc.hpp"
#include "isa/assembler.hpp"
#include "isa/instr.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "kernels/kernel.hpp"
#include "runtime/offload.hpp"
#include "snapshot/archive.hpp"
#include "snapshot/snapshot.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hulkv;

/// Minimal cluster kernel: every core writes hartid+arg[0] to
/// tcdm[0x400+4*hart], then exits.
std::vector<u32> stamp_kernel() {
  using namespace isa::reg;
  isa::Assembler a(0, false);
  a.lw(s1, 0, a0);  // args[0]
  a.ri(isa::Op::kCsrrs, t0, 0, isa::csr::kMhartid);
  a.add(t1, t0, s1);
  a.slli(t2, t0, 2);
  a.li(t3, mem::map::kTcdmBase + 0x400);
  a.add(t2, t2, t3);
  a.sw(t1, 0, t2);
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  return a.assemble();
}

// ---------------------------------------------------------------- archive

TEST(Archive, PodRoundTrip) {
  std::vector<u8> bytes;
  {
    snapshot::Archive ar = snapshot::Archive::saver(&bytes);
    u64 a = 0x1122334455667788ull;
    u32 b = 42;
    bool c = true;
    ar.pod(a);
    ar.pod(b);
    ar.pod(c);
  }
  snapshot::Archive ar = snapshot::Archive::loader(bytes.data(),
                                                   bytes.size());
  u64 a = 0;
  u32 b = 0;
  bool c = false;
  ar.pod(a);
  ar.pod(b);
  ar.pod(c);
  EXPECT_EQ(a, 0x1122334455667788ull);
  EXPECT_EQ(b, 42u);
  EXPECT_TRUE(c);
  EXPECT_EQ(ar.remaining(), 0u);
}

TEST(Archive, StringVectorAndBoolVectorRoundTrip) {
  std::vector<u8> bytes;
  {
    snapshot::Archive ar = snapshot::Archive::saver(&bytes);
    std::string s = "hulk-v";
    std::vector<u32> v = {1, 2, 3, 0xFFFFFFFFu};
    std::vector<bool> b = {true, false, true, true};
    ar.str(s);
    ar.pod_vec(v);
    ar.bool_vec(b);
  }
  snapshot::Archive ar = snapshot::Archive::loader(bytes.data(),
                                                   bytes.size());
  std::string s;
  std::vector<u32> v;
  std::vector<bool> b;
  ar.str(s);
  ar.pod_vec(v);
  ar.bool_vec(b);
  EXPECT_EQ(s, "hulk-v");
  EXPECT_EQ(v, (std::vector<u32>{1, 2, 3, 0xFFFFFFFFu}));
  EXPECT_EQ(b, (std::vector<bool>{true, false, true, true}));
}

TEST(Archive, LoaderThrowsOnTruncation) {
  std::vector<u8> bytes = {1, 2, 3};
  snapshot::Archive ar = snapshot::Archive::loader(bytes.data(),
                                                   bytes.size());
  u64 v = 0;
  EXPECT_THROW(ar.pod(v), SimError);
}

TEST(Archive, HashDistinguishesValues) {
  const auto digest = [](u64 value) {
    snapshot::Archive ar = snapshot::Archive::hasher();
    ar.pod(value);
    return ar.hash();
  };
  EXPECT_EQ(digest(7), digest(7));
  EXPECT_NE(digest(7), digest(8));
}

// -------------------------------------------------------------- container

TEST(SnapshotContainer, WriterReaderRoundTrip) {
  std::ostringstream os(std::ios::binary);
  {
    snapshot::Writer w(os);
    w.section(snapshot::kMeta, [](snapshot::Archive& ar) {
      u64 v = 0xABCDu;
      ar.pod(v);
    });
    w.finish();
  }
  std::istringstream is(os.str(), std::ios::binary);
  snapshot::Reader r(is);
  ASSERT_TRUE(r.has(snapshot::kMeta));
  u64 v = 0;
  r.section(snapshot::kMeta, [&](snapshot::Archive& ar) { ar.pod(v); });
  EXPECT_EQ(v, 0xABCDu);
}

TEST(SnapshotContainer, UnknownSectionsAreSkippable) {
  // A reader from this build must tolerate sections written by a future
  // build: ids it does not ask for are simply never consumed.
  constexpr u32 kFutureId = 0x7F00;
  std::ostringstream os(std::ios::binary);
  {
    snapshot::Writer w(os);
    w.section(kFutureId, [](snapshot::Archive& ar) {
      u64 junk = 0xDEAD;
      ar.pod(junk);
    });
    w.section(snapshot::kMeta, [](snapshot::Archive& ar) {
      u64 v = 1;
      ar.pod(v);
    });
    w.finish();
  }
  std::istringstream is(os.str(), std::ios::binary);
  snapshot::Reader r(is);
  EXPECT_TRUE(r.has(kFutureId));
  u64 v = 0;
  r.section(snapshot::kMeta, [&](snapshot::Archive& ar) { ar.pod(v); });
  EXPECT_EQ(v, 1u);
}

TEST(SnapshotContainer, PartiallyConsumedSectionIsAnError) {
  std::ostringstream os(std::ios::binary);
  {
    snapshot::Writer w(os);
    w.section(snapshot::kMeta, [](snapshot::Archive& ar) {
      u64 a = 1, b = 2;
      ar.pod(a);
      ar.pod(b);
    });
    w.finish();
  }
  std::istringstream is(os.str(), std::ios::binary);
  snapshot::Reader r(is);
  u64 a = 0;
  EXPECT_THROW(
      r.section(snapshot::kMeta,
                [&](snapshot::Archive& ar) { ar.pod(a); }),
      SimError);
}

// ------------------------------------------------------- error rejection

std::string saved_soc_bytes(core::HulkVSoc& soc) {
  std::ostringstream os(std::ios::binary);
  soc.save(os);
  return os.str();
}

void expect_restore_error(const std::string& bytes,
                          const std::string& needle) {
  core::SocConfig cfg;
  core::HulkVSoc soc(cfg);
  std::istringstream is(bytes, std::ios::binary);
  try {
    soc.restore(is);
    FAIL() << "restore accepted a corrupt snapshot (wanted error with '"
           << needle << "')";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(SnapshotErrors, BadMagicRejected) {
  core::HulkVSoc soc;
  std::string bytes = saved_soc_bytes(soc);
  bytes[0] = 'X';
  expect_restore_error(bytes, "bad magic");
}

TEST(SnapshotErrors, UnsupportedVersionRejected) {
  core::HulkVSoc soc;
  std::string bytes = saved_soc_bytes(soc);
  bytes[4] = 99;  // version field follows the 4-byte magic
  expect_restore_error(bytes, "unsupported format version");
}

TEST(SnapshotErrors, TruncatedFileRejected) {
  core::HulkVSoc soc;
  const std::string bytes = saved_soc_bytes(soc);
  expect_restore_error(bytes.substr(0, bytes.size() / 2), "truncated");
  expect_restore_error(bytes.substr(0, 6), "truncated");
  expect_restore_error("", "truncated");
}

TEST(SnapshotErrors, FlippedPayloadByteFailsChecksum) {
  core::HulkVSoc soc;
  std::string bytes = saved_soc_bytes(soc);
  bytes[bytes.size() / 2] ^= 0x40;
  expect_restore_error(bytes, "checksum mismatch");
}

TEST(SnapshotErrors, ConfigMismatchRejected) {
  core::SocConfig cfg;
  cfg.enable_llc = false;
  core::HulkVSoc soc(cfg);
  // Restore into the default (LLC-enabled) config must be refused via
  // the kMeta fingerprint before any component state is touched.
  expect_restore_error(saved_soc_bytes(soc), "configuration mismatch");
}

// ------------------------------------------------------------ reset/fresh

TEST(SocReset, ResetEqualsFreshlyConstructedDigest) {
  core::SocConfig cfg;
  core::HulkVSoc fresh(cfg);
  core::HulkVSoc used(cfg);
  const u64 fresh_digest = fresh.state_digest();
  ASSERT_EQ(used.state_digest(), fresh_digest);

  const std::array<u64, 1> args = {core::layout::kSharedBase};
  kernels::run_host_program(
      used, kernels::host_stride_reads(64, 128, 3).words, args);
  EXPECT_NE(used.state_digest(), fresh_digest);

  used.reset();
  EXPECT_EQ(used.state_digest(), fresh_digest);
}

TEST(SocReset, ResetCoversOffloadState) {
  core::SocConfig cfg;
  core::HulkVSoc fresh(cfg);
  core::HulkVSoc used(cfg);
  runtime::OffloadRuntime fresh_rt(&fresh);
  runtime::OffloadRuntime used_rt(&used);
  const u64 fresh_digest = fresh_rt.state_digest();
  ASSERT_EQ(used_rt.state_digest(), fresh_digest);

  const auto handle = used_rt.register_kernel("stamp", stamp_kernel());
  (void)used_rt.hulk_malloc(4096);
  used_rt.offload(handle, std::array<u32, 1>{17});
  EXPECT_NE(used_rt.state_digest(), fresh_digest);

  used.reset();
  used_rt.reset();
  EXPECT_EQ(used_rt.state_digest(), fresh_digest);
}

// -------------------------------------------------- mid-run round trips

/// Start (but do not finish) a host program, exactly as
/// kernels::run_host_program sets it up.
void start_host_program(core::HulkVSoc& soc, const std::vector<u32>& words,
                        std::span<const u64> args) {
  soc.load_program(core::layout::kHostCodeBase, words);
  auto& host = soc.host();
  for (size_t i = 0; i < args.size(); ++i) {
    host.set_reg(static_cast<u8>(isa::reg::a0 + i), args[i]);
  }
  host.set_reg(isa::reg::sp, core::layout::kHostStackTop - 64);
  host.set_pc(core::layout::kHostCodeBase);
}

TEST(SnapshotRoundTrip, MidHostProgramContinuesCycleIdentically) {
  core::SocConfig cfg;
  core::HulkVSoc a(cfg);
  const std::array<u64, 1> args = {core::layout::kSharedBase};
  const auto program = kernels::host_stride_reads(64, 256, 4).words;

  start_host_program(a, program, args);
  const auto partial = a.host().run(/*max_instructions=*/300);
  ASSERT_FALSE(partial.exited) << "program too short for a mid-run save";

  core::HulkVSoc b(cfg);
  {
    std::ostringstream os(std::ios::binary);
    a.save(os);
    std::istringstream is(os.str(), std::ios::binary);
    b.restore(is);
  }
  ASSERT_EQ(a.state_digest(), b.state_digest());

  const auto rest_a = a.host().run();
  const auto rest_b = b.host().run();
  EXPECT_TRUE(rest_a.exited);
  EXPECT_TRUE(rest_b.exited);
  EXPECT_EQ(rest_a.cycles, rest_b.cycles);
  EXPECT_EQ(rest_a.instret, rest_b.instret);
  EXPECT_EQ(rest_a.exit_code, rest_b.exit_code);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(SnapshotRoundTrip, MidHostProgramTraceIsIdentical) {
  // Tracing is observational (no timing model consults the sink), so
  // the continuation of a restored SoC must emit the exact same event
  // stream as the uninterrupted run.
  core::SocConfig cfg;
  core::HulkVSoc a(cfg);
  const std::array<u64, 1> args = {core::layout::kSharedBase};
  const auto program = kernels::host_stride_reads(64, 256, 4).words;
  start_host_program(a, program, args);
  ASSERT_FALSE(a.host().run(300).exited);

  core::HulkVSoc b(cfg);
  {
    std::ostringstream os(std::ios::binary);
    a.save(os);
    std::istringstream is(os.str(), std::ios::binary);
    b.restore(is);
  }

  struct Recorded {
    std::string track;
    trace::Ev type;
    Cycles ts, dur;
    u64 value, arg;
    bool operator==(const Recorded&) const = default;
  };
  const auto traced_run = [&](core::HulkVSoc& soc) {
    auto& sink = trace::sink();
    sink.clear();
    sink.enable();
    soc.host().run();
    std::vector<Recorded> out;
    out.reserve(sink.events().size());
    for (const trace::Event& e : sink.events()) {
      out.push_back({sink.track_names()[e.track], e.type, e.ts, e.dur,
                     e.value, e.arg});
    }
    sink.disable();
    sink.clear();
    return out;
  };
  const std::vector<Recorded> trace_a = traced_run(a);
  const std::vector<Recorded> trace_b = traced_run(b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
}

TEST(SnapshotRoundTrip, MidHardwareLoopContinuesIdentically) {
  // Step a PMCA core into the body of an Xpulp hardware loop, snapshot
  // with the loop live, and check the restored core walks the remaining
  // iterations in lockstep with the original.
  core::SocConfig cfg;
  core::HulkVSoc a(cfg);

  isa::Assembler as(mem::map::kL2Base, /*rv64=*/false);
  as.li(isa::reg::t0, 50);
  as.lp_setup(0, isa::reg::t0, "done");
  as.addi(isa::reg::a0, isa::reg::a0, 1);
  as.addi(isa::reg::a1, isa::reg::a1, 3);
  as.label("done");
  as.addi(isa::reg::a2, isa::reg::a2, 7);
  const std::vector<u32> words = as.assemble();
  a.load_program(mem::map::kL2Base, words);

  auto& core_a = a.cluster().core(0);
  core_a.reset_for_run(mem::map::kL2Base);
  for (int i = 0; i < 21; ++i) core_a.step();  // inside the loop body
  ASSERT_EQ(core_a.state(), cluster::PmcaCore::State::kRunning);

  core::HulkVSoc b(cfg);
  b.load_program(mem::map::kL2Base, words);  // same code in both L2s
  {
    std::ostringstream os(std::ios::binary);
    a.save(os);
    std::istringstream is(os.str(), std::ios::binary);
    b.restore(is);
  }
  ASSERT_EQ(a.state_digest(), b.state_digest());

  auto& core_b = b.cluster().core(0);
  ASSERT_EQ(core_a.pc(), core_b.pc());
  for (int i = 0; i < 60; ++i) {
    core_a.step();
    core_b.step();
    ASSERT_EQ(core_a.pc(), core_b.pc()) << "diverged at step " << i;
    ASSERT_EQ(core_a.now(), core_b.now()) << "diverged at step " << i;
  }
  EXPECT_EQ(core_a.reg(isa::reg::a0), core_b.reg(isa::reg::a0));
  EXPECT_EQ(core_a.reg(isa::reg::a1), core_b.reg(isa::reg::a1));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(SnapshotRoundTrip, MidDmaTransferContinuesIdentically) {
  core::SocConfig cfg;
  core::HulkVSoc a(cfg);
  std::vector<u8> payload(2048);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<u8>(i * 7 + 3);
  }
  a.write_mem(core::layout::kSharedBase, payload.data(), payload.size());

  // Issue the transfer and snapshot while its completion time is still
  // in the future — the outstanding-job list is live state.
  const u32 job = a.cluster().dma().start_1d(
      /*now=*/100, mem::map::kTcdmBase + 0x400, core::layout::kSharedBase,
      static_cast<u32>(payload.size()));
  const Cycles finish_a = a.cluster().dma().finish_time(job);
  ASSERT_GT(finish_a, 100u);

  core::HulkVSoc b(cfg);
  {
    std::ostringstream os(std::ios::binary);
    a.save(os);
    std::istringstream is(os.str(), std::ios::binary);
    b.restore(is);
  }
  EXPECT_EQ(a.state_digest(), b.state_digest());
  EXPECT_EQ(b.cluster().dma().finish_time(job), finish_a);
  EXPECT_EQ(b.cluster().dma().finish_all(), a.cluster().dma().finish_all());

  std::vector<u8> got(payload.size());
  b.read_mem(mem::map::kTcdmBase + 0x400, got.data(), got.size());
  EXPECT_EQ(got, payload);
}

TEST(SnapshotRoundTrip, OffloadSequenceSplitsExactly) {
  // Save between two offloads (runtime state live: resident image,
  // consumed arenas) and check the second offload costs exactly the
  // same on the restored pair as on the uninterrupted one.
  core::SocConfig cfg;

  core::HulkVSoc a(cfg);
  runtime::OffloadRuntime rt_a(&a);
  const auto handle = rt_a.register_kernel("stamp", stamp_kernel());
  const auto first = rt_a.offload(handle, std::array<u32, 1>{5});

  core::HulkVSoc b(cfg);
  runtime::OffloadRuntime rt_b(&b);
  {
    std::ostringstream os(std::ios::binary);
    rt_a.save(os);
    std::istringstream is(os.str(), std::ios::binary);
    rt_b.restore(is);
  }
  ASSERT_EQ(rt_a.state_digest(), rt_b.state_digest());

  // The restored runtime's kernel table came from the snapshot; the
  // handle is just an index and is valid on both sides.
  const auto second_a = rt_a.offload(handle, std::array<u32, 1>{6});
  const auto second_b = rt_b.offload(handle, std::array<u32, 1>{6});
  EXPECT_EQ(second_a.total, second_b.total);
  EXPECT_EQ(second_a.kernel, second_b.kernel);
  EXPECT_EQ(second_a.code_load, second_b.code_load);
  EXPECT_EQ(second_a.cluster_instret, second_b.cluster_instret);
  // Image already resident on both sides: no lazy code load.
  EXPECT_EQ(second_a.code_load, 0u);
  EXPECT_NE(first.code_load, 0u);
  EXPECT_EQ(rt_a.state_digest(), rt_b.state_digest());
}

TEST(SnapshotRoundTrip, BatchSocSnapshotMatchesStreamPath) {
  core::SocConfig cfg;
  core::HulkVSoc a(cfg);
  const std::array<u64, 1> args = {core::layout::kSharedBase};
  kernels::run_host_program(
      a, kernels::host_stride_reads(64, 128, 2).words, args);

  const batch::SocSnapshot snap = batch::SocSnapshot::capture(a);
  EXPECT_GT(snap.size_bytes(), 0u);
  core::HulkVSoc b(cfg);
  snap.restore_into(b);
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

}  // namespace
