// Block-facts plumbing tests (src/analysis/{facts,callgraph,footprint}):
//  * RangeSet normalisation (merge, adjacency, the kMaxRanges cap,
//    within, unbounded absorption),
//  * FactsTable::query_range — flag conjunction, the clear_mask for
//    proven core-local ecalls, and the self-modifying-code guard (a
//    decoded word that no longer matches the analyzed image must
//    degrade to "unproven", never to wrong facts),
//  * FactsRegistry image registration/displacement/lookup,
//  * call-graph summaries: entry function first, direct callees,
//    recursion, indirect-call taint, effect propagation bottom-up,
//  * the real load paths: offloading a kernel through OffloadRuntime
//    and running host programs through run_host_program must leave the
//    executing cores' BlockCaches with fact-proven (and run-ahead
//    eligible) translations — the counters simperf reports,
//  * the whole-corpus golden JSON (tests/golden/analyze_corpus.json,
//    regenerate with HULKV_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/soc.hpp"
#include "isa/assembler.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/corpus.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "kernels/kernel.hpp"
#include "runtime/offload.hpp"

#ifndef HULKV_TEST_DATA_DIR
#define HULKV_TEST_DATA_DIR "."
#endif

namespace hulkv::analysis {
namespace {

using isa::Assembler;
using isa::Op;
using namespace isa::reg;

core::SocConfig fast_config() {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  return cfg;
}

Options cluster_options() {
  Options options;
  options.profile = IsaProfile::kClusterRv32;
  options.base = 0;
  options.pic = true;
  return options;
}

/// Instr array whose raw words match `words` — query_range verifies
/// only the raw encodings, so decode metadata can stay zeroed.
std::vector<isa::Instr> raw_instrs(const std::vector<u32>& words,
                                   size_t first, size_t count) {
  std::vector<isa::Instr> instrs(count);
  for (size_t i = 0; i < count; ++i) instrs[i].raw = words[first + i];
  return instrs;
}

// ---------------------------------------------------------------------
// RangeSet
// ---------------------------------------------------------------------

TEST(RangeSet, MergesOverlapAndAdjacency) {
  RangeSet s;
  s.add(0x100, 0x110);
  s.add(0x120, 0x130);
  ASSERT_EQ(s.ranges().size(), 2u);
  s.add(0x110, 0x120);  // adjacent on both sides: all three coalesce
  ASSERT_EQ(s.ranges().size(), 1u);
  EXPECT_EQ(s.ranges()[0], (AddrRange{0x100, 0x130}));
  EXPECT_TRUE(s.within(0x100, 0x130));
  EXPECT_FALSE(s.within(0x100, 0x12F));
}

TEST(RangeSet, CapCoalescesClosestPair) {
  RangeSet s;
  // kMaxRanges widely-spaced ranges, then one more close to the first.
  for (size_t i = 0; i < RangeSet::kMaxRanges; ++i) {
    s.add(0x1000 * (i + 1), 0x1000 * (i + 1) + 0x10);
  }
  ASSERT_EQ(s.ranges().size(), RangeSet::kMaxRanges);
  s.add(0x1020, 0x1030);  // nearest neighbour of [0x1000, 0x1010)
  EXPECT_LE(s.ranges().size(), RangeSet::kMaxRanges);
  // Soundness after coalescing: every added byte is still covered.
  EXPECT_TRUE(s.within(0x1000, 0x9010));
  for (size_t i = 0; i < RangeSet::kMaxRanges; ++i) {
    const Addr lo = 0x1000 * (i + 1);
    bool covered = false;
    for (const AddrRange& r : s.ranges()) {
      covered |= r.lo <= lo && lo + 0x10 <= r.hi;
    }
    EXPECT_TRUE(covered) << "range " << i << " lost";
  }
}

TEST(RangeSet, UnboundedAbsorbsEverything) {
  RangeSet s;
  s.add(0x100, 0x200);
  s.set_unbounded();
  EXPECT_TRUE(s.unbounded());
  EXPECT_FALSE(s.empty());
  EXPECT_FALSE(s.within(0, ~u64{0}));
  RangeSet t;
  t.add(0x500, 0x600);
  t.merge(s);
  EXPECT_TRUE(t.unbounded());
}

// ---------------------------------------------------------------------
// FactsTable::query_range
// ---------------------------------------------------------------------

/// Pure arithmetic block, then a core-local exit ecall: the analyzer
/// must prove the whole program eligible with the ecall's shared_mask
/// bit clearable.
TEST(FactsTable, QueryRangeProvesEligibleAndClearMask) {
  Assembler a(0, false);
  a.li(t0, 1);
  a.li(t1, 2);
  a.add(t2, t0, t1);
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  const std::vector<u32> words = a.assemble();
  const Analysis an = analyze_program(words, cluster_options());
  ASSERT_TRUE(an.facts != nullptr);

  const auto instrs = raw_instrs(words, 0, words.size());
  isa::RunAheadFacts out;
  ASSERT_TRUE(an.facts->query_range(0, instrs.data(), instrs.size(), &out));
  EXPECT_TRUE(out.eligible);
  EXPECT_EQ(out.min_cycles, words.size());
  // The ecall is the last instruction; exactly its bit is clearable.
  EXPECT_EQ(out.clear_mask, u64{1} << (words.size() - 1));
  EXPECT_EQ(an.facts->core_local_ecalls(), 1u);
}

TEST(FactsTable, MemoryAccessBlocksEligibility) {
  Assembler a(0, false);
  a.li(t0, 42);
  a.sw(t0, 0, a0);
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  const std::vector<u32> words = a.assemble();
  const Analysis an = analyze_program(words, cluster_options());
  const auto instrs = raw_instrs(words, 0, words.size());
  isa::RunAheadFacts out;
  ASSERT_TRUE(an.facts->query_range(0, instrs.data(), instrs.size(), &out));
  EXPECT_FALSE(out.eligible);  // the store is a memory access
  // The ecall bit is still clearable: clear_mask and eligibility are
  // independent facts (run-ahead may widen past the ecall even in a
  // block it must park for).
  EXPECT_NE(out.clear_mask & (u64{1} << (words.size() - 1)), 0u);
}

TEST(FactsTable, SmcMismatchDegradesToUnproven) {
  Assembler a(0, false);
  a.li(t0, 1);
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  const std::vector<u32> words = a.assemble();
  const Analysis an = analyze_program(words, cluster_options());
  auto instrs = raw_instrs(words, 0, words.size());
  isa::RunAheadFacts out;
  ASSERT_TRUE(an.facts->query_range(0, instrs.data(), instrs.size(), &out));
  // A rewritten word (self-modifying code) must invalidate the proof.
  instrs[0].raw ^= 0x1000;
  EXPECT_FALSE(
      an.facts->query_range(0, instrs.data(), instrs.size(), &out));
  // Out-of-image and misaligned queries are unproven, not UB.
  EXPECT_FALSE(an.facts->query_range(words.size() * 4, instrs.data(), 1,
                                     &out));
  EXPECT_FALSE(an.facts->query_range(2, instrs.data(), 1, &out));
  EXPECT_FALSE(an.facts->query_range(0, instrs.data(), 0, &out));
}

// ---------------------------------------------------------------------
// FactsRegistry
// ---------------------------------------------------------------------

TEST(FactsRegistry, RegisterFindDisplace) {
  auto table_a = std::make_shared<FactsTable>();
  table_a->words.resize(4);  // 16 bytes
  auto table_b = std::make_shared<FactsTable>();
  table_b->words.resize(8);  // 32 bytes

  FactsRegistry reg;
  reg.register_image(0x1000, table_a);
  reg.register_image(0x2000, table_b);
  EXPECT_EQ(reg.size(), 2u);

  Addr base = 0;
  EXPECT_EQ(reg.find(0x100F, &base), table_a.get());
  EXPECT_EQ(base, 0x1000u);
  EXPECT_EQ(reg.find(0x1010, &base), nullptr);
  EXPECT_EQ(reg.find(0x2010, &base), table_b.get());

  // A new image overlapping table_a's range displaces it.
  auto table_c = std::make_shared<FactsTable>();
  table_c->words.resize(16);
  reg.register_image(0x0FF8, table_c);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.find(0x1000, &base), table_c.get());
  EXPECT_EQ(base, 0x0FF8u);

  reg.clear();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_EQ(reg.find(0x1000, &base), nullptr);
}

// ---------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------

TEST(Callgraph, DirectCalleeAndEffectPropagation) {
  // main: call f; exit.   f: store, return.
  Assembler a(0, false);
  a.jal(ra, "f");
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  a.label("f");
  a.sw(zero, 0, a0);
  a.ret();
  const std::vector<u32> words = a.assemble();
  const Analysis an = analyze_program(words, cluster_options());
  const auto& funcs = an.facts->functions;
  ASSERT_EQ(funcs.size(), 2u);
  EXPECT_EQ(funcs[0].entry, 0u);  // image entry first
  ASSERT_EQ(funcs[0].callees.size(), 1u);
  EXPECT_EQ(funcs[0].callees[0], funcs[1].entry);
  // f's store taints the caller's summary bottom-up.
  EXPECT_TRUE(funcs[1].may_access_memory);
  EXPECT_TRUE(funcs[0].may_access_memory);
  EXPECT_FALSE(funcs[1].may_ecall);
  EXPECT_TRUE(funcs[0].may_ecall);
  EXPECT_FALSE(funcs[0].recursive);
}

TEST(Callgraph, RecursionConvergesAndIsFlagged) {
  // f calls itself (conditionally) — the bottom-up fixpoint must
  // terminate and flag the cycle.
  Assembler a(0, false);
  a.jal(ra, "f");
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  a.label("f");
  a.addi(a0, a0, -1);
  a.beqz(a0, "done");
  a.jal(ra, "f");
  a.label("done");
  a.ret();
  const std::vector<u32> words = a.assemble();
  const Analysis an = analyze_program(words, cluster_options());
  const auto& funcs = an.facts->functions;
  ASSERT_EQ(funcs.size(), 2u);
  EXPECT_TRUE(funcs[1].recursive);
  EXPECT_FALSE(funcs[0].recursive);
  // Pure recursion: no memory, no ecall inside f.
  EXPECT_FALSE(funcs[1].may_access_memory);
}

TEST(Callgraph, IndirectCallTaints) {
  Assembler a(0, false);
  a.li(t0, 0x10);
  a.ri(Op::kJalr, ra, t0, 0);  // indirect call: callee unknown
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  const std::vector<u32> words = a.assemble();
  const Analysis an = analyze_program(words, cluster_options());
  ASSERT_FALSE(an.facts->functions.empty());
  const FuncSummary& entry = an.facts->functions[0];
  EXPECT_TRUE(entry.has_indirect_call);
  // Unknown callee: conservatively impure with unbounded footprint.
  EXPECT_FALSE(entry.pure);
  EXPECT_TRUE(entry.footprint.unbounded());
}

// ---------------------------------------------------------------------
// Load paths: facts must reach the executing cores' BlockCaches
// ---------------------------------------------------------------------

TEST(LoadPath, OffloadAttachesFactsToClusterCores) {
  core::HulkVSoc soc(fast_config());
  runtime::OffloadRuntime runtime(&soc);
  // Real corpus kernel; argument values only need to be valid buffers
  // (relu: [0]=x_ext [1]=y_ext [2]=x_l1 [3]=y_l1).
  const auto kernel = kernels::cluster_relu_i8(64);
  const auto handle = runtime.register_kernel(kernel.name, kernel.words);
  const std::array<u32, 4> args = {
      static_cast<u32>(core::layout::kSharedBase),
      static_cast<u32>(core::layout::kSharedBase + 0x100),
      static_cast<u32>(mem::map::kTcdmBase + 0x400),
      static_cast<u32>(mem::map::kTcdmBase + 0x600)};
  runtime.offload(handle, args);
  EXPECT_EQ(runtime.facts_registry().size(), 1u);
  u64 proven = 0, eligible = 0;
  for (u32 c = 0; c < soc.cluster().num_cores(); ++c) {
    proven += soc.cluster().core(c).decode_blocks().fact_proven_blocks();
    eligible +=
        soc.cluster().core(c).decode_blocks().fact_eligible_blocks();
  }
  EXPECT_GT(proven, 0u);
  EXPECT_GT(eligible, 0u);
  // Eviction drops the image's facts with its residency.
  runtime.evict_all();
  EXPECT_EQ(runtime.facts_registry().size(), 0u);
}

TEST(LoadPath, HostProgramsRunWithProvenFacts) {
  core::HulkVSoc soc(fast_config());
  // Two real corpus programs back to back on one host timeline; each
  // run_host_program call re-attaches its own facts table.
  {
    const auto prog = kernels::host_shell_sort(64);
    std::vector<i32> data(64, 3);
    soc.write_mem(core::layout::kSharedBase, data.data(),
                  data.size() * 4);
    const std::array<u64, 1> args = {core::layout::kSharedBase};
    kernels::run_host_program(soc, prog.words, args);
    EXPECT_GT(soc.host().decode_blocks().fact_proven_blocks(), 0u);
    EXPECT_GT(soc.host().decode_blocks().fact_eligible_blocks(), 0u);
  }
  {
    const auto prog = kernels::host_crc32(64);
    const std::vector<u8> data(64, 0xA5);
    const std::vector<u32> table(256, 0);
    const Addr pdata = core::layout::kSharedBase;
    const Addr ptable = pdata + 0x100;
    const Addr pout = ptable + 0x400;
    soc.write_mem(pdata, data.data(), data.size());
    soc.write_mem(ptable, table.data(), table.size() * 4);
    const std::array<u64, 3> args = {pdata, ptable, pout};
    const u64 before = soc.host().decode_blocks().fact_proven_blocks();
    kernels::run_host_program(soc, prog.words, args);
    EXPECT_GT(soc.host().decode_blocks().fact_proven_blocks(), before);
  }
}

// ---------------------------------------------------------------------
// Whole-corpus golden JSON
// ---------------------------------------------------------------------

TEST(Corpus, AnalysesAreErrorFreeWithProvenBlocks) {
  const auto results = kernels::run_corpus_analysis();
  ASSERT_GE(results.size(), 20u);
  u32 with_eligible = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.analysis.report.ok()) << r.entry.name;
    ASSERT_TRUE(r.analysis.facts != nullptr) << r.entry.name;
    EXPECT_GT(r.analysis.facts->reachable_blocks(), 0u) << r.entry.name;
    if (r.analysis.facts->eligible_blocks() > 0) ++with_eligible;
  }
  // The ISSUE gate: run-ahead-eligible blocks proven on well over
  // three programs.
  EXPECT_GE(with_eligible, 3u);
}

TEST(Corpus, JsonMatchesGolden) {
  const std::string json =
      kernels::render_corpus_json(kernels::run_corpus_analysis());
  const std::string golden_path =
      std::string(HULKV_TEST_DATA_DIR) + "/golden/analyze_corpus.json";
  if (std::getenv("HULKV_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    out << json;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream golden_file(golden_path);
  ASSERT_TRUE(golden_file.good()) << "missing golden file " << golden_path;
  std::ostringstream golden;
  golden << golden_file.rdbuf();
  EXPECT_EQ(json, golden.str())
      << "whole-corpus analysis drifted; regenerate with "
         "HULKV_REGEN_GOLDEN=1 if the change is intended";
}

}  // namespace
}  // namespace hulkv::analysis
