file(REMOVE_RECURSE
  "CMakeFiles/fig8_llc_effect.dir/fig8_llc_effect.cpp.o"
  "CMakeFiles/fig8_llc_effect.dir/fig8_llc_effect.cpp.o.d"
  "fig8_llc_effect"
  "fig8_llc_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_llc_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
