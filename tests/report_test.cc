// SocReport: unified counter snapshots and deltas.
#include <gtest/gtest.h>

#include "core/report.hpp"
#include "isa/assembler.hpp"
#include "kernels/kernel.hpp"

namespace hulkv::core {
namespace {

using isa::Assembler;
using namespace isa::reg;

SocConfig fast_config() {
  SocConfig cfg;
  cfg.main_memory = MainMemoryKind::kDdr4;
  return cfg;
}

TEST(SocReport, CapturesAllBlocks) {
  HulkVSoc soc(fast_config());
  const SocReport report = SocReport::capture(soc);
  const auto groups = report.groups();
  // At minimum the always-present stat groups show up.
  for (const char* name : {"host_l1i", "host_l1d", "tcdm", "cluster_dma",
                           "udma", "soc_bus", "llc", "ddr4"}) {
    EXPECT_NE(std::find(groups.begin(), groups.end(), name), groups.end())
        << name;
  }
}

TEST(SocReport, DeltaIsolatesOnePhase) {
  HulkVSoc soc(fast_config());
  Assembler a(layout::kHostCodeBase, true);
  a.li(t0, layout::kSharedBase);
  a.lw(t1, 0, t0);
  a.lw(t2, 64, t0);
  a.li(a7, 93);
  a.li(a0, 0);
  a.ecall();
  const auto program = a.assemble();

  kernels::run_host_program(soc, program, {});
  const SocReport before = SocReport::capture(soc);
  kernels::run_host_program(soc, program, {});
  const SocReport after = SocReport::capture(soc);
  const SocReport delta = after.delta_since(before);

  // Second run: the two data loads hit the warm L1 (2 hits, 0 misses).
  EXPECT_EQ(delta.get("host_l1d", "reads"), 2u);
  EXPECT_EQ(delta.get("host_l1d", "misses"), 0u);
  EXPECT_EQ(delta.get("host_l1d", "hits"), 2u);
  // Unknown counters read as zero.
  EXPECT_EQ(delta.get("nope", "nothing"), 0u);
}

TEST(SocReport, RenderSkipsZeroCounters) {
  HulkVSoc soc(fast_config());
  const std::string text = SocReport::capture(soc).to_string();
  EXPECT_EQ(text.find(" = 0\n"), std::string::npos);
}

}  // namespace
}  // namespace hulkv::core

// ---------------------------------------------------------------------
// hulkv::report: the bench metrics/tables writer (text + JSON from the
// same Value cells).
// ---------------------------------------------------------------------

#include <cmath>

#include "report/report.hpp"

namespace hulkv::report {
namespace {

TEST(ReportValue, TextAndJsonRenderTheSameDigits) {
  EXPECT_EQ(Value::integer(-42).to_text(), "-42");
  EXPECT_EQ(Value::integer(-42).to_json(), "-42");
  EXPECT_EQ(Value::uinteger(18446744073709551615ull).to_text(),
            "18446744073709551615");
  const Value pi = Value::number(3.14159, 3);
  EXPECT_EQ(pi.to_text(), "3.142");
  EXPECT_EQ(pi.to_json(), "3.142");
  const Value zero_places = Value::number(47.0, 0);
  EXPECT_EQ(zero_places.to_text(), zero_places.to_json());
}

TEST(ReportValue, TextKindQuotesOnlyInJson) {
  const Value v = Value::text("hello \"world\"");
  EXPECT_EQ(v.to_text(), "hello \"world\"");
  EXPECT_EQ(v.to_json(), "\"hello \\\"world\\\"\"");
  EXPECT_FALSE(v.is_numeric());
}

TEST(ReportValue, NonFiniteBecomesNullInJson) {
  const Value nan = Value::number(std::nan(""), 2);
  EXPECT_EQ(nan.to_text(), "-");
  EXPECT_EQ(nan.to_json(), "null");
}

TEST(ReportTable, RendersAlignedTextAndRejectsWidthMismatch) {
  Table table("demo", {"name", "cycles"});
  table.add_row({Value::text("a"), Value::uinteger(12)});
  table.add_row({Value::text("bb"), Value::uinteger(3456)});
  const std::string text = table.to_text();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("cycles"), std::string::npos);
  EXPECT_NE(text.find("3456"), std::string::npos);
  EXPECT_THROW(table.add_row({Value::text("short")}), SimError);
}

TEST(ReportMetrics, JsonEmbedsExactTextNumbers) {
  MetricsReport rep("demo_bench");
  rep.add_metric("speedup", Value::number(12.3456, 1), "x");
  rep.add_metric("cycles", Value::uinteger(987654321));
  rep.add_note("a note");
  Table& t = rep.add_table("t", {"k", "v"});
  t.add_row({Value::text("row"), Value::number(0.125, 2)});

  ASSERT_NE(rep.metric("speedup"), nullptr);
  EXPECT_EQ(rep.metric_text("speedup"), "12.3");
  EXPECT_EQ(rep.metric_text("missing"), "?");

  const std::string text = rep.to_text();
  const std::string json = rep.to_json();
  // The headline digits are identical in both renderings.
  for (const char* digits : {"12.3", "987654321", "0.12"}) {
    EXPECT_NE(text.find(digits), std::string::npos) << digits;
    EXPECT_NE(json.find(digits), std::string::npos) << digits;
  }
  EXPECT_NE(json.find("\"name\":\"demo_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"x\""), std::string::npos);
}

TEST(ReportMetrics, TableReferencesSurviveLaterAddTable) {
  MetricsReport rep("demo");
  Table& first = rep.add_table("one", {"a"});
  for (int i = 0; i < 50; ++i) rep.add_table("more", {"b"});
  first.add_row({Value::integer(7)});  // must not be dangling
  EXPECT_EQ(rep.tables().front().rows().size(), 1u);
}

TEST(ReportArgs, ParsesJsonAndTraceFlagsBothSpellings) {
  const char* argv1[] = {"bench", "--json", "out.json", "--trace=t.json",
                         "--benchmark_filter=foo"};
  const BenchOptions a =
      parse_bench_args(5, const_cast<char**>(argv1));
  EXPECT_EQ(a.json_path, "out.json");
  EXPECT_EQ(a.trace_path, "t.json");

  const char* argv2[] = {"bench", "--json=x.json"};
  const BenchOptions b = parse_bench_args(2, const_cast<char**>(argv2));
  EXPECT_EQ(b.json_path, "x.json");
  EXPECT_TRUE(b.trace_path.empty());
}

TEST(ReportArgs, ParsesTelemetryFlagBothSpellings) {
  // Bare form: enabled, default directory (empty = "runs").
  const char* argv1[] = {"bench", "--telemetry"};
  const BenchOptions a = parse_bench_args(2, const_cast<char**>(argv1));
  EXPECT_TRUE(a.telemetry);
  EXPECT_TRUE(a.telemetry_dir.empty());

  // = form carries the output directory.
  const char* argv2[] = {"bench", "--telemetry=out/runs"};
  const BenchOptions b = parse_bench_args(2, const_cast<char**>(argv2));
  EXPECT_TRUE(b.telemetry);
  EXPECT_EQ(b.telemetry_dir, "out/runs");

  // Default: off.
  const char* argv3[] = {"bench"};
  const BenchOptions c = parse_bench_args(1, const_cast<char**>(argv3));
  EXPECT_FALSE(c.telemetry);
}

TEST(ReportArgs, BareTelemetryDoesNotConsumeNextArg) {
  // Like --profile, the optional value only binds with '=': a bare
  // --telemetry followed by another flag must leave that flag intact.
  const char* argv[] = {"bench", "--telemetry", "--json", "out.json"};
  const BenchOptions o = parse_bench_args(4, const_cast<char**>(argv));
  EXPECT_TRUE(o.telemetry);
  EXPECT_TRUE(o.telemetry_dir.empty());
  EXPECT_EQ(o.json_path, "out.json");
}

}  // namespace
}  // namespace hulkv::report
