// Regenerates Fig. 8: the five IoT CPU-centric benchmarks on the four
// memory configurations, normalised to DDR4+LLC. The paper's claim:
// with the LLC, HyperRAM and DDR4 are "closer than 5%" — LPDDR/DDR
// memories would be oversized for these workloads.
#include <array>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "batch/batch.hpp"
#include "common/rng.hpp"
#include "core/soc.hpp"
#include "kernels/golden.hpp"
#include "kernels/host_kernels.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "profile/profile.hpp"
#include "isa/threaded.hpp"
#include "report/report.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace hulkv;

/// Sets up data on the SoC and returns {program, args}.
struct Workload {
  std::string name;
  std::function<std::pair<kernels::KernelProgram, std::vector<u64>>(
      core::HulkVSoc&)>
      setup;
};

Cycles run_on(const Workload& workload, core::MainMemoryKind kind,
              bool llc) {
  core::SocConfig cfg;
  cfg.main_memory = kind;
  cfg.enable_llc = llc;
  core::HulkVSoc soc(cfg);
  auto [program, args] = workload.setup(soc);
  // Steady-state measurement: warm run, then the timed run (benchmarks
  // are conventionally repeated; the caches stay warm across runs).
  kernels::run_host_program(soc, program, args);
  return kernels::run_host_program(soc, program, args).cycles;
}

std::vector<Workload> workloads() {
  std::vector<Workload> list;

  list.push_back({"crc32", [](core::HulkVSoc& soc) {
                    const u32 n = 64 * 1024;
                    Xoshiro256 rng(1);
                    std::vector<u8> data(n);
                    for (auto& b : data) b = static_cast<u8>(rng.next());
                    const auto table = kernels::golden::crc32_table();
                    const Addr pd = core::layout::kSharedBase;
                    const Addr pt = pd + n;
                    const Addr pr = pt + 1024;
                    soc.write_mem(pd, data.data(), n);
                    soc.write_mem(pt, table.data(), 1024);
                    return std::pair{kernels::host_crc32(n),
                                     std::vector<u64>{pd, pt, pr}};
                  }});

  list.push_back({"fir", [](core::HulkVSoc& soc) {
                    const u32 n = 16384, taps = 32;
                    Xoshiro256 rng(2);
                    std::vector<i32> x(n), h(taps);
                    for (auto& v : x)
                      v = static_cast<i32>(rng.next_range(-1000, 1000));
                    for (auto& v : h)
                      v = static_cast<i32>(rng.next_range(-16, 16));
                    const Addr px = core::layout::kSharedBase;
                    const Addr ph = px + n * 4;
                    const Addr py = ph + taps * 4;
                    soc.write_mem(px, x.data(), n * 4);
                    soc.write_mem(ph, h.data(), taps * 4);
                    return std::pair{kernels::host_fir_i32(n, taps),
                                     std::vector<u64>{px, ph, py}};
                  }});

  list.push_back({"sort", [](core::HulkVSoc& soc) {
                    const u32 n = 16384;
                    Xoshiro256 rng(3);
                    std::vector<i32> data(n);
                    for (auto& v : data)
                      v = static_cast<i32>(rng.next_range(-1000000, 1000000));
                    const Addr pd = core::layout::kSharedBase;
                    soc.write_mem(pd, data.data(), n * 4);
                    return std::pair{kernels::host_shell_sort(n),
                                     std::vector<u64>{pd}};
                  }});

  list.push_back({"histogram", [](core::HulkVSoc& soc) {
                    const u32 n = 96 * 1024;  // fits the 128 kB LLC (embedded working set)
                    Xoshiro256 rng(4);
                    std::vector<u8> data(n);
                    for (auto& b : data) b = static_cast<u8>(rng.next());
                    const Addr pd = core::layout::kSharedBase;
                    const Addr pb = pd + n;
                    soc.write_mem(pd, data.data(), n);
                    return std::pair{kernels::host_histogram(n),
                                     std::vector<u64>{pd, pb}};
                  }});

  list.push_back({"strsearch", [](core::HulkVSoc& soc) {
                    const u32 n = 96 * 1024, m = 8;
                    Xoshiro256 rng(5);
                    std::vector<u8> hay(n);
                    for (auto& b : hay)
                      b = static_cast<u8>('a' + rng.next_below(4));
                    const std::string needle = "abcdabcd";
                    const Addr ph = core::layout::kSharedBase;
                    const Addr pn = ph + n;
                    const Addr pr = pn + 64;
                    soc.write_mem(ph, hay.data(), n);
                    soc.write_mem(pn, needle.data(), m);
                    return std::pair{kernels::host_strsearch(n, m),
                                     std::vector<u64>{ph, pn, pr}};
                  }});

  return list;
}

}  // namespace

int main(int argc, char** argv) {
  namespace report = hulkv::report;
  const report::BenchOptions options = report::parse_bench_args(argc, argv);
  isa::configure_tier(options);
  profile::configure(options);
  telemetry::configure(options);

  report::MetricsReport rep("fig8_llc_effect");
  rep.add_note("Fig. 8 — Last Level Cache effect on IoT benchmarks. "
               "Execution time normalised to DDR4+LLC (lower is better).");

  report::Table& table = rep.add_table(
      "normalised execution time",
      {"benchmark", "ddr4_llc", "hyper_llc", "ddr4", "hyper",
       "hyper_llc_gap_pct"});
  // One job per (workload, memory configuration) point on the sweep
  // pool; rows assemble from the result slots in grid order.
  constexpr std::array<std::pair<core::MainMemoryKind, bool>, 4> kConfigs = {
      std::pair{core::MainMemoryKind::kDdr4, true},
      std::pair{core::MainMemoryKind::kHyperRam, true},
      std::pair{core::MainMemoryKind::kDdr4, false},
      std::pair{core::MainMemoryKind::kHyperRam, false}};
  const std::vector<Workload> list = workloads();
  const batch::SweepEngine engine(options.jobs);
  const std::vector<Cycles> cycles = engine.map<Cycles>(
      list.size() * kConfigs.size(), [&](u64 index) {
        const auto& [kind, llc] = kConfigs[index % kConfigs.size()];
        return run_on(list[index / kConfigs.size()], kind, llc);
      });
  double worst_gap = 0;
  for (size_t row = 0; row < list.size(); ++row) {
    const Cycles* c = &cycles[row * kConfigs.size()];
    const double base = static_cast<double>(c[0]);
    const double gap = 100.0 * (c[1] / base - 1.0);
    worst_gap = std::max(worst_gap, gap);
    table.add_row({report::Value::text(list[row].name),
                   report::Value::number(1.0, 3),
                   report::Value::number(c[1] / base, 3),
                   report::Value::number(c[2] / base, 3),
                   report::Value::number(c[3] / base, 3),
                   report::Value::number(gap, 2)});
  }
  rep.add_metric("worst_gap_pct", report::Value::number(worst_gap, 2), "%");
  rep.add_note("Shape check (paper): cases 1 and 2 are 'closer than 5%'. "
               "Worst measured gap: " + rep.metric_text("worst_gap_pct") +
               "%");
  profile::finish_bench(rep, options);
  report::finish_bench(rep, options);
  telemetry::finish_bench(rep, options);
  return 0;
}
