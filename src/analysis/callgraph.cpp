#include "analysis/callgraph.hpp"

#include <algorithm>

#include "analysis/facts.hpp"

namespace hulkv::analysis {

using isa::Instr;
using isa::Op;

namespace {

bool is_linking_jal(const Instr& in) {
  return in.op == Op::kJal && in.rd != 0;
}

/// Direct callee address of a jal call, or 0 when out of image.
Addr jal_target(const Cfg& cfg, size_t index) {
  const Addr target =
      cfg.program.addr_of(index) + cfg.program.instrs[index].imm;
  return cfg.program.contains(target) && target % 4 == 0 ? target : 0;
}

/// Intraprocedural reachability from `entry_block`: follow every
/// successor edge except call targets (a call block continues at its
/// fall-through; the callee is summarised separately).
void collect_members(const Cfg& cfg, size_t entry_block,
                     FuncSummary* func) {
  std::vector<bool> seen(cfg.blocks.size(), false);
  std::vector<size_t> work{entry_block};
  seen[entry_block] = true;
  while (!work.empty()) {
    const size_t b = work.back();
    work.pop_back();
    func->blocks.push_back(b);
    const Block& block = cfg.blocks[b];
    const Instr& term = cfg.program.instrs[block.last];
    if (block.is_call) {
      if (term.op == Op::kJal) {
        const Addr callee = jal_target(cfg, block.last);
        if (callee != 0) func->callees.push_back(callee);
      } else {
        func->has_indirect_call = true;  // jalr call: unknown callee
      }
      if (block.fall_succ != SIZE_MAX) {
        const size_t succ = block.succs[block.fall_succ];
        if (!seen[succ]) {
          seen[succ] = true;
          work.push_back(succ);
        }
      }
      continue;
    }
    if (term.op == Op::kJalr && block.succs.empty()) {
      // Indirect tail jump: control leaves for an unknown address (a
      // return is fine — it ends the function — but `jalr x0` through a
      // computed register taints the summary like an indirect call).
      const bool is_return = term.rd == 0 && term.rs1 == isa::reg::ra &&
                             term.imm == 0;
      if (!is_return) func->has_indirect_call = true;
    }
    for (const size_t succ : block.succs) {
      if (!seen[succ]) {
        seen[succ] = true;
        work.push_back(succ);
      }
    }
  }
  std::sort(func->blocks.begin(), func->blocks.end());
  std::sort(func->callees.begin(), func->callees.end());
  func->callees.erase(
      std::unique(func->callees.begin(), func->callees.end()),
      func->callees.end());
}

}  // namespace

std::vector<FuncSummary> build_callgraph(const Cfg& cfg,
                                         const FactsTable& facts) {
  std::vector<FuncSummary> functions;
  if (cfg.blocks.empty()) return functions;
  const Program& program = cfg.program;

  // Discover function entries: the image entry plus every in-image
  // target of a linking jal.
  std::vector<Addr> entries{program.base};
  for (size_t i = 0; i < program.instrs.size(); ++i) {
    if (!is_linking_jal(program.instrs[i])) continue;
    const Addr target = jal_target(cfg, i);
    if (target != 0) entries.push_back(target);
  }
  std::sort(entries.begin() + 1, entries.end());
  entries.erase(std::unique(entries.begin() + 1, entries.end()),
                entries.end());
  if (entries.size() > 1 && entries[1] == entries[0]) {
    entries.erase(entries.begin() + 1);  // a jal targeting the entry
  }

  for (const Addr entry : entries) {
    FuncSummary func;
    func.entry = entry;
    collect_members(cfg, cfg.block_of[program.index_of(entry)], &func);
    functions.push_back(std::move(func));
  }

  const auto func_index = [&](Addr entry) -> size_t {
    for (size_t f = 0; f < functions.size(); ++f) {
      if (functions[f].entry == entry) return f;
    }
    return SIZE_MAX;
  };

  // Intraprocedural (own-blocks) effects. `all_tcdm` tracks "every
  // access so far proven TCDM-local" separately from the exported
  // tcdm_local (which additionally requires the function to access
  // memory at all).
  std::vector<bool> all_tcdm(functions.size(), true);
  for (size_t f = 0; f < functions.size(); ++f) {
    FuncSummary& func = functions[f];
    for (const size_t b : func.blocks) {
      const BlockFacts& bf = facts.blocks[b];
      func.may_access_memory |= bf.may_access_memory;
      func.may_ecall |= bf.may_ecall;
      if (bf.may_access_memory && !bf.tcdm_local) all_tcdm[f] = false;
      func.footprint.merge(bf.footprint);
    }
    if (func.has_indirect_call) {
      func.may_access_memory = true;
      func.may_ecall = true;
      all_tcdm[f] = false;
      func.footprint.set_unbounded();
    }
  }

  // Bottom-up propagation of callee effects to a fixpoint (monotone
  // joins over a finite lattice: converges even for mutual recursion).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t f = 0; f < functions.size(); ++f) {
      FuncSummary& func = functions[f];
      for (const Addr callee : func.callees) {
        const size_t c = func_index(callee);
        if (c == SIZE_MAX) continue;
        const FuncSummary& sub = functions[c];
        if (sub.may_access_memory && !func.may_access_memory) {
          func.may_access_memory = true;
          changed = true;
        }
        if (sub.may_ecall && !func.may_ecall) {
          func.may_ecall = true;
          changed = true;
        }
        if (sub.may_access_memory && !all_tcdm[c] && all_tcdm[f]) {
          all_tcdm[f] = false;
          changed = true;
        }
        if (sub.has_indirect_call && all_tcdm[f]) {
          all_tcdm[f] = false;
          changed = true;
        }
        RangeSet joined = func.footprint;
        joined.merge(sub.footprint);
        if (joined.unbounded() != func.footprint.unbounded() ||
            joined.ranges() != func.footprint.ranges()) {
          func.footprint = std::move(joined);
          changed = true;
        }
      }
    }
  }

  // Recursion: a function on any call-graph cycle through resolvable
  // edges.
  for (size_t f = 0; f < functions.size(); ++f) {
    std::vector<bool> seen(functions.size(), false);
    std::vector<size_t> work;
    for (const Addr callee : functions[f].callees) {
      const size_t c = func_index(callee);
      if (c != SIZE_MAX && !seen[c]) {
        seen[c] = true;
        work.push_back(c);
      }
    }
    while (!work.empty()) {
      const size_t c = work.back();
      work.pop_back();
      if (c == f) {
        functions[f].recursive = true;
        break;
      }
      for (const Addr callee : functions[c].callees) {
        const size_t n = func_index(callee);
        if (n != SIZE_MAX && !seen[n]) {
          seen[n] = true;
          work.push_back(n);
        }
      }
    }
    if (!functions[f].recursive && seen[f]) functions[f].recursive = true;
  }

  for (size_t f = 0; f < functions.size(); ++f) {
    FuncSummary& func = functions[f];
    func.pure = !func.may_access_memory && !func.may_ecall &&
                !func.has_indirect_call;
    func.tcdm_local = func.may_access_memory && all_tcdm[f];
  }
  return functions;
}

}  // namespace hulkv::analysis
