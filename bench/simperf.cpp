// Microbenchmarks of the simulator itself (google-benchmark): ISS
// throughput, cache-model and HyperRAM-model access rates. These guard
// the usability of the repo (the figure benches replay millions of
// instructions) rather than reproducing a paper result.
#include <benchmark/benchmark.h>

#include "core/soc.hpp"
#include "isa/assembler.hpp"
#include "isa/decoder.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "kernels/kernel.hpp"
#include "mem/cache.hpp"
#include "mem/hyperram.hpp"

namespace {

using namespace hulkv;

void BM_Decode(benchmark::State& state) {
  const u32 word =
      isa::encode({.op = isa::Op::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3});
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(word));
  }
}
BENCHMARK(BM_Decode);

void BM_HostIssLoop(benchmark::State& state) {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  core::HulkVSoc soc(cfg);
  isa::Assembler a(core::layout::kHostCodeBase, true);
  using namespace isa::reg;
  a.li(t0, 100000);
  a.label("loop");
  a.addi(t1, t1, 1);
  a.addi(t0, t0, -1);
  a.bnez(t0, "loop");
  a.li(a7, 93);
  a.li(a0, 0);
  a.ecall();
  soc.load_program(core::layout::kHostCodeBase, a.assemble());

  u64 instructions = 0;
  for (auto _ : state) {
    soc.host().set_pc(core::layout::kHostCodeBase);
    const auto run = soc.host().run();
    instructions += run.instret;
  }
  state.counters["instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_HostIssLoop)->Unit(benchmark::kMillisecond);

void BM_CacheHit(benchmark::State& state) {
  mem::FixedLatency next(100);
  mem::CacheModel cache({.name = "bench"}, &next);
  cache.access(0, 0x8000'0000, 8, false);
  Cycles now = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(now++, 0x8000'0000, 8, false));
  }
}
BENCHMARK(BM_CacheHit);

void BM_HyperRamBurst(benchmark::State& state) {
  mem::HyperRamModel hyper({});
  Cycles now = 0;
  for (auto _ : state) {
    now = hyper.access(now, 0x8000'0000 + (now % 4096) * 64, 64, false);
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_HyperRamBurst);

}  // namespace

BENCHMARK_MAIN();
