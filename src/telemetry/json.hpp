// Minimal JSON reader (hulkv::telemetry::json).
//
// The repo's writers (report::MetricsReport, the telemetry manifest)
// emit JSON; this is the matching reader so tools/hulkv-stats can
// aggregate, diff and schema-check those files without external
// dependencies. A straightforward recursive-descent DOM parser:
// complete JSON value grammar (RFC 8259), objects keep insertion
// order, numbers keep both a double view and the raw text (so exact
// integer comparisons survive round-trips). Not a streaming parser —
// manifests and bench JSONs are small.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace hulkv::telemetry::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered object (diff output follows writer order).
using Object = std::vector<std::pair<std::string, Value>>;

enum class Kind : u8 { kNull, kBool, kNumber, kString, kArray, kObject };

const char* kind_name(Kind kind);

class Value {
 public:
  Value() = default;  // null

  Kind kind() const { return kind_; }
  bool is(Kind k) const { return kind_ == k; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  /// The exact token text of a number ("3.14", "42").
  const std::string& raw_number() const { return string_; }
  const std::string& as_string() const { return string_; }
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member by key, or nullptr (also nullptr on non-objects).
  const Value* find(std::string_view key) const;
  /// Nested lookup along '.'-separated keys ("host.hostname").
  const Value* find_path(std::string_view path) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n, std::string raw);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  // string value, or raw number text
  std::shared_ptr<Array> array_;
  std::shared_ptr<Object> object_;
};

/// Parse one complete JSON document. Throws SimError with position
/// information on malformed input or trailing garbage.
Value parse(std::string_view text);

/// Parse JSON-lines: one document per non-empty line.
std::vector<Value> parse_lines(std::string_view text);

}  // namespace hulkv::telemetry::json
