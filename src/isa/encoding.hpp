// Binary encodings for the HULK-V instruction set.
//
// Standard RV32/RV64 IMFD instructions use the real RISC-V formats
// (R/R4/I/S/B/U/J/CSR/system). The Xpulp-style extensions occupy the
// custom-0/1/2/3 major opcodes reserved by the RISC-V spec for vendor
// extensions; the exact field assignment is repo-specific and documented
// in encoding.cpp. encode() and decode() share one table, and
// tests/isa_roundtrip_test.cc property-tests encode(decode(w)) == w over
// the full operation set.
#pragma once

#include "isa/instr.hpp"

namespace hulkv::isa {

/// Encode a decoded instruction into its 32-bit word.
/// Throws SimError if a field is out of range for the format (e.g. an
/// immediate that does not fit, or a misaligned branch offset).
u32 encode(const Instr& instr);

}  // namespace hulkv::isa
