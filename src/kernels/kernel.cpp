#include "kernels/kernel.hpp"

#include "analysis/analyzer.hpp"
#include "common/log.hpp"
#include "isa/instr.hpp"
#include "profile/profile.hpp"
#include "telemetry/telemetry.hpp"

namespace hulkv::kernels {

std::string_view precision_name(Precision p) {
  switch (p) {
    case Precision::kInt32:
      return "int32";
    case Precision::kInt8:
      return "int8";
    case Precision::kFp32:
      return "fp32";
    case Precision::kFp16:
      return "fp16";
  }
  return "?";
}

KernelProgram finish_program(std::string name, Precision precision,
                             isa::Assembler& a, u64 ops) {
  KernelProgram program;
  program.name = std::move(name);
  program.precision = precision;
  program.words = a.assemble();
  program.ops = ops;
  program.symbols = a.symbols();
  return program;
}

HostRun run_host_program(core::HulkVSoc& soc, const KernelProgram& program,
                         std::span<const u64> args) {
  profile::session().register_symbols(core::layout::kHostCodeBase,
                                      program.words.size() * 4,
                                      program.name, program.symbols);
  telemetry::note_program(program.name, program.words.data(),
                          program.words.size() * 4);
  return run_host_program(soc, program.words, args);
}

HostRun run_host_program(core::HulkVSoc& soc,
                         const std::vector<u32>& program,
                         std::span<const u64> args) {
  prepare_host_program(soc, program, args);
  const auto result = soc.host().run();
  HULKV_CHECK(result.exited, "host program did not exit");
  return {result.cycles, result.instret, result.exit_code};
}

void prepare_host_program(core::HulkVSoc& soc,
                          const std::vector<u32>& program,
                          std::span<const u64> args) {
  HULKV_CHECK(args.size() <= 6, "host programs take up to 6 arguments");

  // Load-time lint: reject images the static analyzer can prove broken
  // (see src/analysis/). Only the registers actually passed count as
  // defined at entry.
  analysis::Options options;
  options.base = core::layout::kHostCodeBase;
  options.profile = analysis::IsaProfile::kHostRv64;
  options.pic = false;  // analyzed at the real load address
  u64 entry = analysis::reg_mask({isa::reg::sp});
  for (size_t i = 0; i < args.size(); ++i) {
    entry |= u64{1} << (isa::reg::a0 + i);
  }
  options.entry_defined = entry;
  // run_host_program sets sp to a fixed address below — seeding the
  // analyzer with it makes stack accesses provably mapped even through
  // auipc/add-derived address arithmetic (non-PIC interval folding).
  options.entry_values.emplace_back(
      isa::reg::sp,
      analysis::Interval::constant(core::layout::kHostStackTop - 64, 64));
  analysis::Analysis analyzed = [&] {
    const telemetry::Span span(telemetry::SpanPhase::kProgramAnalyze);
    return analysis::analyze_program(program, options);
  }();
  analysis::log_report(analyzed.report, "host-program");
  if (!analyzed.report.ok()) {
    throw SimError("host program rejected by static analysis:\n" +
                   analyzed.report.to_string());
  }

  {
    const telemetry::Span load_span(telemetry::SpanPhase::kProgramLoad);
    telemetry::note_program("host-program", program.data(),
                            program.size() * 4);
    if (telemetry::enabled()) {
      telemetry::registry().note_config_fingerprint(
          soc.config_fingerprint());
    }
    soc.load_program(core::layout::kHostCodeBase, program);
    // Attach the proven facts to the host decode cache at the load base
    // (counts run-ahead-eligible blocks; clears exit-ecall mask bits).
    analysis::attach_facts(soc.host().decode_blocks(),
                           core::layout::kHostCodeBase,
                           std::move(analyzed.facts));
  }

  auto& host = soc.host();
  for (size_t i = 0; i < args.size(); ++i) {
    host.set_reg(static_cast<u8>(isa::reg::a0 + i), args[i]);
  }
  host.set_reg(isa::reg::sp, core::layout::kHostStackTop - 64);
  host.set_pc(core::layout::kHostCodeBase);
}

runtime::Arena make_dram_arena() {
  return runtime::Arena(core::layout::kSharedBase,
                        core::layout::kSharedSize);
}

}  // namespace hulkv::kernels
