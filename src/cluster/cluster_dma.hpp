// Cluster DMA (paper section III-C): "The cluster provides a DMA with one
// AXI4 port and 4 ports towards the L1SPM for high-bandwidth, low-latency
// transactions to/from the L1SPM."
//
// Transfers move data between the TCDM and the rest of the SoC (L2SPM or
// external memory via the LLC). The TCDM side sustains 4 words/cycle; the
// AXI side sustains one 64-bit beat/cycle and is further limited by the
// target (L2 SRAM or the LLC/HyperRAM path, whose occupancy the shared
// timing models track). Jobs are asynchronous: the runtime issues a job
// and later waits on its completion, which is what enables the
// double-buffering overlap that DORY-style tiling exploits.
#pragma once

#include <vector>

#include "cluster/tcdm.hpp"
#include "common/stats.hpp"
#include "mem/interconnect.hpp"

namespace hulkv::cluster {

class ClusterDma {
 public:
  ClusterDma(mem::SocBus* bus, Tcdm* tcdm, Addr tcdm_base);

  /// Start a 1D transfer. Exactly one side must be in TCDM. Returns a job
  /// id; the transfer's completion cycle is recorded internally.
  u32 start_1d(Cycles now, Addr dst, Addr src, u32 bytes);

  /// Start a 2D transfer: `rows` rows of `row_bytes`; the non-TCDM side
  /// strides by `ext_stride` between rows, the TCDM side is packed.
  u32 start_2d(Cycles now, Addr dst, Addr src, u32 row_bytes, u32 rows,
               u32 ext_stride);

  /// Completion cycle of job `id`.
  Cycles finish_time(u32 id) const;

  /// Completion cycle of all outstanding jobs (dma_wait barrier).
  Cycles finish_all() const;

  /// Forget completed jobs (keeps the vector bounded across long runs).
  void retire_before(Cycles now);

  const StatGroup& stats() const { return stats_; }

  /// Snapshot traversal (outstanding job completion times + stats).
  void serialize(snapshot::Archive& ar);

  /// Freshly-constructed state (no outstanding jobs).
  void reset();

 private:
  bool in_tcdm(Addr addr, u64 bytes) const;
  Cycles move(Cycles now, Addr dst, Addr src, u32 bytes);

  mem::SocBus* bus_;
  Tcdm* tcdm_;
  Addr tcdm_base_;
  std::vector<Cycles> jobs_;  // finish time per job id
  u32 retired_ = 0;
  StatGroup stats_;
  trace::TrackHandle trace_track_;
};

}  // namespace hulkv::cluster
