// Kernel validation: every assembly kernel (host RV64 and cluster
// RV32+Xpulp) is executed on the ISS and compared against its golden C++
// reference — bit-exact for integer, exact-by-construction for the FP16
// datapath (the golden models replicate the rounding order).
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "core/soc.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/golden.hpp"
#include "kernels/host_kernels.hpp"
#include "kernels/iot_benchmarks.hpp"

namespace hulkv::kernels {
namespace {

core::SocConfig fast_config() {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  return cfg;
}

constexpr Addr kTcdm = mem::map::kTcdmBase;
constexpr Addr kKernelL2 = mem::map::kL2Base + 256 * 1024;  // code high in L2

/// Fill a DRAM buffer with random bytes; returns host copies.
template <typename T>
std::vector<T> random_vec(Xoshiro256& rng, size_t count, i64 lo, i64 hi) {
  std::vector<T> v(count);
  for (auto& x : v) x = static_cast<T>(rng.next_range(lo, hi));
  return v;
}

std::vector<u16> random_halves(Xoshiro256& rng, size_t count) {
  std::vector<u16> v(count);
  for (auto& x : v) {
    v[&x - v.data()] = float_to_half_bits(
        static_cast<float>(rng.next_range(-64, 64)) / 8.0f);
  }
  return v;
}

/// Run a registered cluster kernel with a prepared TCDM argument block.
void run_cluster_kernel(core::HulkVSoc& soc, const KernelProgram& kernel,
                        std::span<const u32> args) {
  soc.load_program(kKernelL2, kernel.words);
  soc.write_mem(kTcdm, args.data(), args.size() * 4);
  soc.cluster().run_kernel(soc.host().now(), kKernelL2,
                           static_cast<u32>(kTcdm));
}

TEST(HostKernels, MatmulI32MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(1);
  const u32 m = 7, n = 9, k = 8;
  const auto a = random_vec<i32>(rng, m * k, -1000, 1000);
  const auto b = random_vec<i32>(rng, k * n, -1000, 1000);
  const Addr pa = core::layout::kSharedBase;
  const Addr pb = pa + a.size() * 4;
  const Addr pc = pb + b.size() * 4;
  soc.write_mem(pa, a.data(), a.size() * 4);
  soc.write_mem(pb, b.data(), b.size() * 4);

  const auto prog = host_matmul_i32(m, n, k);
  EXPECT_EQ(prog.ops, 2ull * m * n * k);
  run_host_program(soc, prog.words, std::array<u64, 3>{pa, pb, pc});

  std::vector<i32> got(m * n), want(m * n);
  soc.read_mem(pc, got.data(), got.size() * 4);
  golden::matmul_i32(a, b, want, m, n, k);
  EXPECT_EQ(got, want);
}

TEST(HostKernels, Conv3x3I32MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(2);
  const u32 h = 12, w = 16;
  const auto img = random_vec<i32>(rng, h * w, -100, 100);
  const auto ker = random_vec<i32>(rng, 9, -8, 8);
  const Addr pi = core::layout::kSharedBase;
  const Addr pk = pi + img.size() * 4;
  const Addr po = pk + 64;
  soc.write_mem(pi, img.data(), img.size() * 4);
  soc.write_mem(pk, ker.data(), ker.size() * 4);

  run_host_program(soc, host_conv3x3_i32(h, w).words,
                   std::array<u64, 3>{pi, pk, po});

  std::vector<i32> got((h - 2) * (w - 2)), want(got.size());
  soc.read_mem(po, got.data(), got.size() * 4);
  golden::conv3x3_i32(img, ker, want, h, w);
  EXPECT_EQ(got, want);
}

TEST(HostKernels, FirI32MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(3);
  const u32 n = 64, taps = 8;
  const auto x = random_vec<i32>(rng, n, -500, 500);
  const auto h = random_vec<i32>(rng, taps, -16, 16);
  const Addr px = core::layout::kSharedBase;
  const Addr ph = px + n * 4;
  const Addr py = ph + taps * 4;
  soc.write_mem(px, x.data(), n * 4);
  soc.write_mem(ph, h.data(), taps * 4);

  run_host_program(soc, host_fir_i32(n, taps).words,
                   std::array<u64, 3>{px, ph, py});

  std::vector<i32> got(n - taps + 1), want(got.size());
  soc.read_mem(py, got.data(), got.size() * 4);
  golden::fir_i32(x, h, want, n, taps);
  EXPECT_EQ(got, want);
}

TEST(HostKernels, MatmulF32MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(4);
  const u32 m = 5, n = 6, k = 4;
  std::vector<float> a(m * k), b(k * n);
  for (auto& v : a) v = static_cast<float>(rng.next_range(-50, 50)) / 4.0f;
  for (auto& v : b) v = static_cast<float>(rng.next_range(-50, 50)) / 4.0f;
  const Addr pa = core::layout::kSharedBase;
  const Addr pb = pa + a.size() * 4;
  const Addr pc = pb + b.size() * 4;
  soc.write_mem(pa, a.data(), a.size() * 4);
  soc.write_mem(pb, b.data(), b.size() * 4);

  run_host_program(soc, host_matmul_f32(m, n, k).words,
                   std::array<u64, 3>{pa, pb, pc});

  std::vector<float> got(m * n), want(m * n);
  soc.read_mem(pc, got.data(), got.size() * 4);
  golden::matmul_f32(a, b, want, m, n, k);
  EXPECT_EQ(got, want);  // same fma order -> bit exact
}

TEST(HostKernels, AxpyAndDotpF32MatchGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(5);
  const u32 n = 100;
  std::vector<float> x(n), y(n);
  for (auto& v : x) v = static_cast<float>(rng.next_range(-100, 100)) / 8.0f;
  for (auto& v : y) v = static_cast<float>(rng.next_range(-100, 100)) / 8.0f;
  const float alpha = 1.25f;
  const Addr px = core::layout::kSharedBase;
  const Addr py = px + n * 4;
  const Addr pa = py + n * 4;
  soc.write_mem(px, x.data(), n * 4);
  soc.write_mem(py, y.data(), n * 4);
  soc.write_mem(pa, &alpha, 4);

  run_host_program(soc, host_axpy_f32(n).words,
                   std::array<u64, 3>{px, py, pa});
  std::vector<float> got(n);
  soc.read_mem(py, got.data(), n * 4);
  auto want = y;
  golden::axpy_f32(alpha, x, want);
  EXPECT_EQ(got, want);

  // Dot product of x with the updated y.
  const Addr pr = pa + 64;
  run_host_program(soc, host_dotp_f32(n).words,
                   std::array<u64, 3>{px, py, pr});
  float dot = 0;
  soc.read_mem(pr, &dot, 4);
  EXPECT_EQ(dot, golden::dotp_f32(x, got));
}

TEST(ClusterKernels, MatmulI8MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(6);
  const u32 m = 16, n = 12, k = 32;
  const auto a = random_vec<i8>(rng, m * k, -128, 127);
  const auto bt = random_vec<i8>(rng, n * k, -128, 127);
  const Addr pa = core::layout::kSharedBase;
  const Addr pbt = pa + a.size();
  const Addr pc = (pbt + bt.size() + 63) & ~63ull;
  soc.write_mem(pa, a.data(), a.size());
  soc.write_mem(pbt, bt.data(), bt.size());

  const u32 a_l1 = kTcdm + 0x100;
  const u32 bt_l1 = a_l1 + m * k;
  const u32 c_l1 = bt_l1 + n * k;
  const std::array<u32, 6> args = {
      static_cast<u32>(pa),  static_cast<u32>(pbt), static_cast<u32>(pc),
      a_l1,                  bt_l1,                 c_l1};
  run_cluster_kernel(soc, cluster_matmul_i8(m, n, k), args);

  std::vector<i32> got(m * n), want(m * n);
  soc.read_mem(pc, got.data(), got.size() * 4);
  golden::matmul_i8(a, bt, want, m, n, k);
  EXPECT_EQ(got, want);
}

TEST(ClusterKernels, MatmulF16MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(7);
  const u32 m = 9, n = 8, k = 16;
  const auto a = random_halves(rng, m * k);
  const auto bt = random_halves(rng, n * k);
  const Addr pa = core::layout::kSharedBase;
  const Addr pbt = pa + a.size() * 2;
  const Addr pc = (pbt + bt.size() * 2 + 63) & ~63ull;
  soc.write_mem(pa, a.data(), a.size() * 2);
  soc.write_mem(pbt, bt.data(), bt.size() * 2);

  const u32 a_l1 = kTcdm + 0x100;
  const u32 bt_l1 = a_l1 + m * k * 2;
  const u32 c_l1 = bt_l1 + n * k * 2;
  const std::array<u32, 6> args = {
      static_cast<u32>(pa),  static_cast<u32>(pbt), static_cast<u32>(pc),
      a_l1,                  bt_l1,                 c_l1};
  run_cluster_kernel(soc, cluster_matmul_f16(m, n, k), args);

  std::vector<float> got(m * n), want(m * n);
  soc.read_mem(pc, got.data(), got.size() * 4);
  golden::matmul_f16(a, bt, want, m, n, k);
  EXPECT_EQ(got, want);
}

TEST(ClusterKernels, Conv3x3I8MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(8);
  const u32 h = 20, w = 24;
  const auto img = random_vec<i8>(rng, h * w, -128, 127);
  const auto ker = random_vec<i8>(rng, 9, -16, 16);
  const Addr pi = core::layout::kSharedBase;
  const Addr pk = pi + ((img.size() + 63) & ~63ull);
  const Addr po = pk + 64;
  soc.write_mem(pi, img.data(), img.size());
  soc.write_mem(pk, ker.data(), ker.size());

  const u32 img_l1 = kTcdm + 0x100;
  const u32 ker_l1 = img_l1 + h * w;
  const u32 out_l1 = (ker_l1 + 12 + 3) & ~3u;
  const std::array<u32, 6> args = {
      static_cast<u32>(pi),  static_cast<u32>(pk), static_cast<u32>(po),
      img_l1,                ker_l1,               out_l1};
  run_cluster_kernel(soc, cluster_conv3x3_i8(h, w), args);

  std::vector<i32> got((h - 2) * (w - 2)), want(got.size());
  soc.read_mem(po, got.data(), got.size() * 4);
  golden::conv3x3_i8(img, ker, want, h, w);
  EXPECT_EQ(got, want);
}

TEST(ClusterKernels, FirI8MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(9);
  const u32 n = 128, taps = 16;
  const auto x = random_vec<i8>(rng, n, -128, 127);
  const auto h = random_vec<i8>(rng, taps, -32, 32);
  const Addr px = core::layout::kSharedBase;
  const Addr ph = px + 256;
  const Addr py = ph + 64;
  soc.write_mem(px, x.data(), n);
  soc.write_mem(ph, h.data(), taps);

  const u32 x_l1 = kTcdm + 0x100;
  const u32 h_l1 = x_l1 + 256;
  const u32 y_l1 = h_l1 + 64;
  const std::array<u32, 6> args = {
      static_cast<u32>(px), static_cast<u32>(ph), static_cast<u32>(py),
      x_l1,                 h_l1,                 y_l1};
  run_cluster_kernel(soc, cluster_fir_i8(n, taps), args);

  std::vector<i32> got(n - taps + 1), want(got.size());
  soc.read_mem(py, got.data(), got.size() * 4);
  golden::fir_i8(x, h, want, n, taps);
  EXPECT_EQ(got, want);
}

TEST(ClusterKernels, AxpyF16MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(10);
  const u32 n = 256;  // multiple of 16
  const auto x = random_halves(rng, n);
  auto y = random_halves(rng, n);
  const u16 alpha = float_to_half_bits(0.5f);
  const u32 alpha_pair = alpha | (static_cast<u32>(alpha) << 16);
  const Addr px = core::layout::kSharedBase;
  const Addr py = px + n * 2;
  soc.write_mem(px, x.data(), n * 2);
  soc.write_mem(py, y.data(), n * 2);

  const u32 x_l1 = kTcdm + 0x100;
  const u32 y_l1 = x_l1 + n * 2;
  const std::array<u32, 5> args = {static_cast<u32>(px),
                                   static_cast<u32>(py), alpha_pair, x_l1,
                                   y_l1};
  run_cluster_kernel(soc, cluster_axpy_f16(n), args);

  std::vector<u16> got(n);
  soc.read_mem(py, got.data(), n * 2);
  golden::axpy_f16(alpha, x, y);
  EXPECT_EQ(got, y);
}

TEST(ClusterKernels, DotpF16MatchesChunkedGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(11);
  const u32 n = 512;
  const auto x = random_halves(rng, n);
  const auto y = random_halves(rng, n);
  const Addr px = core::layout::kSharedBase;
  const Addr py = px + n * 2;
  soc.write_mem(px, x.data(), n * 2);
  soc.write_mem(py, y.data(), n * 2);

  const u32 x_l1 = kTcdm + 0x100;
  const u32 y_l1 = x_l1 + n * 2;
  const u32 part_l1 = y_l1 + n * 2;
  const u32 res_l1 = part_l1 + 64;
  const std::array<u32, 6> args = {static_cast<u32>(px),
                                   static_cast<u32>(py), x_l1, y_l1,
                                   part_l1, res_l1};
  run_cluster_kernel(soc, cluster_dotp_f16(n), args);

  // Expected: same partitioning as the kernel (8 contiguous chunks,
  // partials summed in core order).
  const u32 chunk = n / 8;
  float want = 0.0f;
  for (u32 c = 0; c < 8; ++c) {
    const float partial =
        golden::dotp_f16(std::span(x).subspan(c * chunk, chunk),
                         std::span(y).subspan(c * chunk, chunk));
    want += partial;
  }
  u32 bits = 0;
  std::memcpy(&bits,
              soc.cluster().tcdm().storage().data() + (res_l1 - kTcdm), 4);
  EXPECT_EQ(std::bit_cast<float>(bits), want);
}

TEST(ClusterKernels, SpeedupOverHostIsLarge) {
  // The headline mechanism of Fig. 6: the 8-core SIMD cluster beats the
  // scalar host by a wide margin on int8 matmul.
  const u32 m = 16, n = 16, k = 32;
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(12);

  // Host run.
  const auto a32 = random_vec<i32>(rng, m * k, -128, 127);
  const auto b32 = random_vec<i32>(rng, k * n, -128, 127);
  const Addr pa = core::layout::kSharedBase;
  const Addr pb = pa + a32.size() * 4;
  const Addr pc = pb + b32.size() * 4;
  soc.write_mem(pa, a32.data(), a32.size() * 4);
  soc.write_mem(pb, b32.data(), b32.size() * 4);
  const auto host_run = run_host_program(soc, host_matmul_i32(m, n, k).words,
                                         std::array<u64, 3>{pa, pb, pc});

  // Cluster run (same problem, int8).
  const auto a8 = random_vec<i8>(rng, m * k, -128, 127);
  const auto bt8 = random_vec<i8>(rng, n * k, -128, 127);
  const Addr qa = pc + m * n * 4;
  const Addr qbt = qa + a8.size();
  const Addr qc = (qbt + bt8.size() + 63) & ~63ull;
  soc.write_mem(qa, a8.data(), a8.size());
  soc.write_mem(qbt, bt8.data(), bt8.size());
  const u32 a_l1 = kTcdm + 0x100;
  const u32 bt_l1 = a_l1 + m * k;
  const u32 c_l1 = bt_l1 + n * k;
  const std::array<u32, 6> args = {
      static_cast<u32>(qa),  static_cast<u32>(qbt), static_cast<u32>(qc),
      a_l1,                  bt_l1,                 c_l1};
  soc.load_program(kKernelL2, cluster_matmul_i8(m, n, k).words);
  soc.write_mem(kTcdm, args.data(), args.size() * 4);
  const auto kres = soc.cluster().run_kernel(soc.host().now(), kKernelL2,
                                             static_cast<u32>(kTcdm));

  EXPECT_GT(host_run.cycles, 10 * kres.cycles)
      << "host " << host_run.cycles << " vs cluster " << kres.cycles;
}

TEST(IotBenchmarks, Crc32MatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(13);
  const u32 n = 4096;
  const auto data = random_vec<u8>(rng, n, 0, 255);
  const auto table = golden::crc32_table();
  const Addr pd = core::layout::kSharedBase;
  const Addr pt = pd + n;
  const Addr pr = pt + 1024;
  soc.write_mem(pd, data.data(), n);
  soc.write_mem(pt, table.data(), 1024);

  run_host_program(soc, host_crc32(n).words, std::array<u64, 3>{pd, pt, pr});
  u32 got = 0;
  soc.read_mem(pr, &got, 4);
  EXPECT_EQ(got, golden::crc32(data));
}

TEST(IotBenchmarks, Crc32KnownVector) {
  // "123456789" -> 0xCBF43926 (the canonical CRC-32 check value).
  const char* s = "123456789";
  std::vector<u8> data(s, s + 9);
  EXPECT_EQ(golden::crc32(data), 0xCBF43926u);

  core::HulkVSoc soc(fast_config());
  const auto table = golden::crc32_table();
  const Addr pd = core::layout::kSharedBase;
  const Addr pt = pd + 64;
  const Addr pr = pt + 1024;
  soc.write_mem(pd, data.data(), 9);
  soc.write_mem(pt, table.data(), 1024);
  run_host_program(soc, host_crc32(9).words, std::array<u64, 3>{pd, pt, pr});
  u32 got = 0;
  soc.read_mem(pr, &got, 4);
  EXPECT_EQ(got, 0xCBF43926u);
}

TEST(IotBenchmarks, ShellSortSorts) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(14);
  const u32 n = 2000;
  auto data = random_vec<i32>(rng, n, -100000, 100000);
  const Addr pd = core::layout::kSharedBase;
  soc.write_mem(pd, data.data(), n * 4);

  run_host_program(soc, host_shell_sort(n).words, std::array<u64, 1>{pd});

  std::vector<i32> got(n);
  soc.read_mem(pd, got.data(), n * 4);
  auto want = data;
  golden::shell_sort(want);
  EXPECT_EQ(got, want);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(IotBenchmarks, HistogramMatchesGolden) {
  core::HulkVSoc soc(fast_config());
  Xoshiro256 rng(15);
  const u32 n = 8192;
  const auto data = random_vec<u8>(rng, n, 0, 255);
  const Addr pd = core::layout::kSharedBase;
  const Addr pb = pd + n;
  soc.write_mem(pd, data.data(), n);

  run_host_program(soc, host_histogram(n).words, std::array<u64, 2>{pd, pb});

  std::vector<u32> got(256), want(256);
  soc.read_mem(pb, got.data(), 1024);
  golden::histogram(data, want);
  EXPECT_EQ(got, want);
}

TEST(IotBenchmarks, StrsearchCounts) {
  core::HulkVSoc soc(fast_config());
  std::string text = "abcabcababcabc";
  std::string pat = "abc";
  const Addr ph = core::layout::kSharedBase;
  const Addr pn = ph + 4096;
  const Addr pr = pn + 64;
  soc.write_mem(ph, text.data(), text.size());
  soc.write_mem(pn, pat.data(), pat.size());

  run_host_program(soc,
                   host_strsearch(static_cast<u32>(text.size()),
                                  static_cast<u32>(pat.size()))
                       .words,
                   std::array<u64, 3>{ph, pn, pr});
  u32 got = 0;
  soc.read_mem(pr, &got, 4);
  const auto bytes = [](const std::string& s) {
    return std::span<const u8>(reinterpret_cast<const u8*>(s.data()),
                               s.size());
  };
  EXPECT_EQ(got, golden::strsearch(bytes(text), bytes(pat)));
  EXPECT_EQ(got, 4u);
}

TEST(IotBenchmarks, DhrystoneMixRunsAndScales) {
  core::HulkVSoc soc(fast_config());
  const Addr b1 = core::layout::kSharedBase;
  const Addr b2 = b1 + 128;
  std::vector<u8> buf(64, 0x41);
  soc.write_mem(b1, buf.data(), 64);

  const auto r10 = run_host_program(soc, host_dhrystone_mix(10).words,
                                    std::array<u64, 2>{b1, b2});
  const auto r100 = run_host_program(soc, host_dhrystone_mix(100).words,
                                     std::array<u64, 2>{b1, b2});
  // Cycles scale ~linearly with iterations.
  EXPECT_GT(r100.cycles, 8 * r10.cycles);
  EXPECT_LT(r100.cycles, 12 * r10.cycles);
}

TEST(IotBenchmarks, StrideReadsMissRatioGrowsWithFootprint) {
  // Small footprint -> L1 hits; large footprint -> misses (Fig. 7's
  // independent variable).
  core::SocConfig cfg = fast_config();
  core::HulkVSoc soc_small(cfg), soc_large(cfg);
  const Addr buf = core::layout::kSharedBase;

  run_host_program(soc_small, host_stride_reads(4, 1024, 8).words,
                   std::array<u64, 1>{buf});  // 4 kB footprint
  run_host_program(soc_large, host_stride_reads(256, 1024, 8).words,
                   std::array<u64, 1>{buf});  // 256 kB footprint

  const double small_ratio = soc_small.host().dcache().hit_ratio();
  const double large_ratio = soc_large.host().dcache().hit_ratio();
  EXPECT_GT(small_ratio, 0.95);
  EXPECT_LT(large_ratio, 0.2);
}

}  // namespace
}  // namespace hulkv::kernels
