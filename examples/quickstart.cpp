// Quickstart: boot a HULK-V SoC, run a program on the CVA6 host (which
// prints through the Linux write syscall), offload a tiny kernel to the
// 8-core PMCA through the OpenMP-style facade, and read the performance
// counters. Start here.
#include <cstdio>

#include "common/log.hpp"
#include "core/soc.hpp"
#include "isa/assembler.hpp"
#include "kernels/kernel.hpp"
#include "runtime/offload.hpp"
#include "runtime/omp.hpp"

using namespace hulkv;
using isa::Assembler;
using isa::Op;
using namespace isa::reg;

int main() {
  set_log_level(LogLevel::kInfo);

  // 1. Bring up the SoC: CVA6 host + 8-core PMCA + HyperRAM & LLC.
  core::HulkVSoc soc;
  runtime::OffloadRuntime rt(&soc);

  // 2. A host program: print a banner via the write syscall, then exit.
  const char banner[] = "hello from CVA6 running on the HULK-V simulator\n";
  const Addr text = rt.hulk_malloc(sizeof(banner));
  soc.write_mem(text, banner, sizeof(banner) - 1);

  Assembler host_asm(core::layout::kHostCodeBase, /*rv64=*/true);
  host_asm.li(a0, static_cast<i64>(text));
  host_asm.li(a1, sizeof(banner) - 1);
  host_asm.li(a7, 64);  // write
  host_asm.ecall();
  host_asm.li(a7, 93);  // exit
  host_asm.li(a0, 0);
  host_asm.ecall();
  const auto host_run =
      kernels::run_host_program(soc, host_asm.assemble(), {});
  std::printf("host program: %llu instructions in %llu cycles\n",
              static_cast<unsigned long long>(host_run.instret),
              static_cast<unsigned long long>(host_run.cycles));

  // 3. An `omp target` region: every PMCA core squares its hart id and
  //    stores it into the TCDM.
  Assembler device(0, /*rv64=*/false);
  device.ri(Op::kCsrrs, t0, 0, isa::csr::kMhartid);
  device.mul(t1, t0, t0);
  device.slli(t2, t0, 2);
  device.li(t3, mem::map::kTcdmBase + 0x400);
  device.add(t2, t2, t3);
  device.sw(t1, 0, t2);
  device.li(a7, cluster::envcall::kExit);
  device.ecall();

  runtime::omp::TargetRegion region(&rt, "square_hartid", device.assemble());
  const auto result = region({});
  std::printf("offload: total %llu cycles (code load %llu, kernel %llu, "
              "handshake %llu)\n",
              static_cast<unsigned long long>(result.total),
              static_cast<unsigned long long>(result.code_load),
              static_cast<unsigned long long>(result.kernel),
              static_cast<unsigned long long>(result.handshake));

  std::printf("PMCA results:");
  for (u32 c = 0; c < soc.cluster().num_cores(); ++c) {
    u32 v = 0;
    soc.read_mem(mem::map::kTcdmBase + 0x400 + 4 * c, &v, 4);
    std::printf(" %u", v);
  }
  std::printf("\n");

  // 4. Performance counters of the memory hierarchy.
  std::printf("\n%s", soc.host().dcache().stats().to_string().c_str());
  if (soc.llc() != nullptr) {
    std::printf("%s", soc.llc()->stats().to_string().c_str());
  }
  if (soc.hyperram() != nullptr) {
    std::printf("%s", soc.hyperram()->stats().to_string().c_str());
  }
  return 0;
}
