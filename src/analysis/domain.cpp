#include "analysis/domain.hpp"

#include <algorithm>

namespace hulkv::analysis {

namespace {

/// Width of an interval as a count-minus-one, in unsigned __int128 so
/// the bits=64 top does not overflow.
unsigned __int128 span(const Interval& a) {
  return static_cast<unsigned __int128>(a.hi - a.lo);
}

/// The sum of two intervals is a contiguous segment of `total_span + 1`
/// values modulo 2^bits starting at `lo`. Representable as an unsigned
/// interval exactly when the segment does not wrap past the modulus.
Interval wrapped_segment(u64 lo, unsigned __int128 total_span, u32 bits) {
  const u64 mask = Interval::mask_of(bits);
  if (total_span > span(Interval::top(bits))) return Interval::top(bits);
  const u64 hi = (lo + static_cast<u64>(total_span)) & mask;
  lo &= mask;
  if (lo > hi) return Interval::top(bits);  // wraps through 0
  return Interval::range(lo, hi);
}

}  // namespace

Interval Interval::join(const Interval& a, const Interval& b) {
  if (a.is_bottom()) return b;
  if (b.is_bottom()) return a;
  return range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

Interval Interval::meet(const Interval& a, const Interval& b) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  const u64 lo = std::max(a.lo, b.lo);
  const u64 hi = std::min(a.hi, b.hi);
  if (lo > hi) return bottom();
  return range(lo, hi);
}

Interval Interval::widen(const Interval& prev, const Interval& next,
                         u32 bits) {
  if (prev.is_bottom()) return next;
  if (next.is_bottom()) return prev;
  const u64 lo = next.lo < prev.lo ? 0 : prev.lo;
  const u64 hi = next.hi > prev.hi ? mask_of(bits) : prev.hi;
  // The result must subsume `next` even when a stable bound of `prev`
  // is tighter on the other side (prev ⊐ next keeps prev's bounds).
  return range(std::min(lo, next.lo), std::max(hi, next.hi));
}

Interval Interval::add(const Interval& a, const Interval& b, u32 bits) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  return wrapped_segment(a.lo + b.lo, span(a) + span(b), bits);
}

Interval Interval::sub(const Interval& a, const Interval& b, u32 bits) {
  if (a.is_bottom() || b.is_bottom()) return bottom();
  return wrapped_segment(a.lo - b.hi, span(a) + span(b), bits);
}

Interval Interval::add_const(const Interval& a, i64 imm, u32 bits) {
  return add(a, constant(static_cast<u64>(imm), bits), bits);
}

Interval Interval::shl(const Interval& a, u32 shamt, u32 bits) {
  if (a.is_bottom()) return bottom();
  const u64 mask = mask_of(bits);
  shamt &= bits - 1;
  if (a.is_constant()) return constant((a.lo << shamt) & mask, bits);
  // Non-singleton: keep the range only when no bound sheds bits.
  if (shamt != 0 && a.hi > (mask >> shamt)) return top(bits);
  return range((a.lo << shamt) & mask, (a.hi << shamt) & mask);
}

Interval Interval::shr(const Interval& a, u32 shamt, u32 bits) {
  if (a.is_bottom()) return bottom();
  shamt &= bits - 1;
  const u64 mask = mask_of(bits);
  return range((a.lo & mask) >> shamt, (a.hi & mask) >> shamt);
}

Interval Interval::and_const(const Interval& a, i64 imm, u32 bits) {
  if (a.is_bottom()) return bottom();
  const u64 m = static_cast<u64>(imm) & mask_of(bits);
  if (a.is_constant()) return constant(a.lo & m, bits);
  // x & m <= min(x, m); with a non-negative mask the result stays below
  // both bounds. (A sign-extended mask keeps the value's top bits, so
  // only the value bound applies.)
  return range(0, std::min(a.hi, imm >= 0 ? m : mask_of(bits)));
}

Interval Interval::or_const(const Interval& a, i64 imm, u32 bits) {
  if (a.is_bottom()) return bottom();
  if (a.is_constant()) {
    return constant(a.lo | (static_cast<u64>(imm) & mask_of(bits)), bits);
  }
  return top(bits);
}

Interval Interval::xor_const(const Interval& a, i64 imm, u32 bits) {
  if (a.is_bottom()) return bottom();
  if (a.is_constant()) {
    return constant(a.lo ^ (static_cast<u64>(imm) & mask_of(bits)), bits);
  }
  return top(bits);
}

Interval Interval::sext32(const Interval& a) {
  if (a.is_bottom()) return bottom();
  if (a.is_constant()) {
    const auto v = static_cast<u64>(
        static_cast<i64>(static_cast<i32>(static_cast<u32>(a.lo))));
    return constant(v, 64);
  }
  // A non-singleton range of sign-extended 32-bit values is contiguous
  // in u64 only when all members share the sign bit; not worth chasing.
  return top(64);
}

}  // namespace hulkv::analysis
