#include "isa/block_cache.hpp"

#include <algorithm>
#include <utility>

#include "common/types.hpp"
#include "isa/decoder.hpp"
#include "telemetry/telemetry.hpp"

namespace hulkv::isa {

BlockCache::BlockCache(ReadWord read_word)
    : read_word_(std::move(read_word)) {}

bool BlockCache::ends_block(Op op) {
  switch (op) {
    case Op::kJal:
    case Op::kJalr:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kWfi:
    case Op::kIllegal:
      return true;
    default:
      return is_branch(op);
  }
}

void BlockCache::invalidate() {
  ++generation_;
  last_ = nullptr;
  span_lo_ = ~0ull;
  span_hi_ = 0;
}

void BlockCache::set_fact_provider(FactProvider provider) {
  fact_provider_ = std::move(provider);
  invalidate();
}

void BlockCache::invalidate_range(Addr base, u64 bytes) {
  if (bytes == 0 || span_lo_ >= span_hi_) return;
  const Addr end = base + bytes;
  if (end <= span_lo_ || base >= span_hi_) return;  // disjoint: keep blocks
  invalidate();
}

DecodedBlock& BlockCache::lookup_slow(Addr pc) {
  DecodedBlock& block = blocks_[pc];
  if (block.generation != generation_) translate(block, pc);
  last_ = &block;
  return block;
}

namespace {
/// True when executing `op` may touch state shared between cores:
/// memory accesses (TCDM banks, AXI port, DRAM model) and the
/// environment-call / trap ops (ecall handlers reach the event unit and
/// DMA; traps must surface in global time order). The fused MAC-&-load
/// ops go through the LSU port too but are not in `is_load` (they are
/// primarily SIMD ops), so they are listed explicitly — missing a
/// memory op here reorders bank-conflict arbitration under run-ahead.
bool touches_shared_state(Op op) {
  switch (op) {
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kWfi:
    case Op::kIllegal:
    case Op::kPvSdotspBMem:
    case Op::kPvSdotspHMem:
      return true;
    default:
      return is_load(op) || is_store(op);
  }
}
}  // namespace

void BlockCache::translate(DecodedBlock& block, Addr pc) {
  // Telemetry sits on the translate (slow) path only — the per-retire
  // fast path stays a pointer compare.
  const telemetry::Span span(telemetry::SpanPhase::kBlockTranslate);
  block.start = pc;
  block.instrs.clear();
  block.shared_mask = 0;
  block.facts_proven = false;
  block.facts_eligible = false;
  block.min_cycles = 0;
  Addr p = pc;
  for (size_t i = 0; i < kMaxBlockInstrs; ++i) {
    u32 word = 0;
    if (i == 0) {
      word = read_word_(p);  // a fault here is the caller's fetch fault
    } else {
      try {
        word = read_word_(p);
      } catch (const SimError&) {
        break;  // code runs off the mapped region: end the block before it
      }
    }
    const Instr instr = decode(word);
    if (touches_shared_state(instr.op)) block.shared_mask |= u64{1} << i;
    block.instrs.push_back(instr);
    if (ends_block(instr.op)) break;
    p += 4;
  }
  if (fact_provider_ && !block.instrs.empty()) {
    RunAheadFacts facts;
    if (fact_provider_(pc, block.instrs.data(), block.instrs.size(),
                       &facts)) {
      // The provider's contract (RunAheadFacts): clear_mask bits cover
      // only instructions proven to touch no cross-core shared timing
      // state, so widening the run-ahead mask here cannot change any
      // cycle the multi-core scheduler computes.
      block.shared_mask &= ~facts.clear_mask;
      block.facts_proven = true;
      block.facts_eligible = facts.eligible;
      block.min_cycles = facts.min_cycles;
      ++fact_proven_;
      if (facts.eligible) ++fact_eligible_;
    }
  }
  block.generation = generation_;
  ++translations_;
  span_lo_ = std::min(span_lo_, pc);
  span_hi_ = std::max(span_hi_, p + 4);
}

}  // namespace hulkv::isa
