// Ablation studies on the design choices behind HULK-V's fully digital
// memory hierarchy (beyond the paper's reported configurations):
//
//  A. IoT-memory family: HyperRAM vs RPC DRAM ([8]) vs idealised DDR4,
//     with and without the LLC, on the synthetic benchmark.
//  B. LLC geometry: size and associativity sensitivity (section III-A's
//     parameterization).
//  C. HyperBUS controller knobs: burst length and refresh period.
//  D. SV39 MMU translation overhead (the cost of being Linux-capable),
//     TLB-size sensitivity.
//  E. Voltage/frequency corners of the GF22 implementation.
#include <array>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "batch/batch.hpp"
#include "core/soc.hpp"
#include "kernels/golden.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "common/rng.hpp"
#include "profile/profile.hpp"
#include "isa/threaded.hpp"
#include "report/report.hpp"
#include "telemetry/telemetry.hpp"
#include "runtime/offload.hpp"
#include "power/power_model.hpp"

namespace {

using namespace hulkv;
namespace report = hulkv::report;

Cycles run_stride_on(core::SocConfig cfg, u32 stride, u32 reads = 1024,
                     u32 rounds = 10) {
  core::HulkVSoc soc(cfg);
  const std::array<u64, 1> args = {core::layout::kSharedBase};
  kernels::run_host_program(
      soc, kernels::host_stride_reads(stride, reads, 2), args);
  return kernels::run_host_program(
             soc, kernels::host_stride_reads(stride, reads, rounds),
             args)
      .cycles;
}

void memory_family_ablation(const batch::SweepEngine& engine,
                            report::MetricsReport& rep) {
  report::Table& table = rep.add_table(
      "A. IoT-memory family (cycles, stride benchmark)",
      {"memory", "llc", "fp_64kb", "fp_256kb", "fp_1mb"});
  struct Row {
    core::MainMemoryKind kind;
    const char* name;
    bool llc;
  };
  std::vector<Row> rows;
  for (const bool llc : {true, false}) {
    for (const auto& [kind, name] :
         {std::pair{core::MainMemoryKind::kHyperRam, "HyperRAM"},
          std::pair{core::MainMemoryKind::kRpcDram, "RPC-DRAM"},
          std::pair{core::MainMemoryKind::kDdr4, "DDR4"}}) {
      rows.push_back({kind, name, llc});
    }
  }
  const std::array<u32, 3> strides = {64, 256, 1024};
  const std::vector<Cycles> cycles = engine.map<Cycles>(
      rows.size() * strides.size(), [&](u64 index) {
        core::SocConfig cfg;
        cfg.main_memory = rows[index / strides.size()].kind;
        cfg.enable_llc = rows[index / strides.size()].llc;
        return run_stride_on(cfg, strides[index % strides.size()]);
      });
  for (size_t row = 0; row < rows.size(); ++row) {
    const Cycles* c = &cycles[row * strides.size()];
    table.add_row({report::Value::text(rows[row].name),
                   report::Value::text(rows[row].llc ? "yes" : "no"),
                   report::Value::uinteger(c[0]),
                   report::Value::uinteger(c[1]),
                   report::Value::uinteger(c[2])});
  }
  rep.add_note("A: RPC DRAM (x16 DDR + row buffers) lands between "
               "HyperRAM and the idealised DDR4, confirming the paper's "
               "'IoT memory family' framing.");
}

/// Rows of the single-column B/C tables: a label plus the config to run.
struct LabelledConfig {
  std::string label;
  core::SocConfig cfg;
  u32 stride;
};

void add_labelled_rows(const batch::SweepEngine& engine, report::Table& table,
                       const std::vector<LabelledConfig>& rows) {
  const std::vector<Cycles> cycles = engine.map<Cycles>(
      rows.size(),
      [&](u64 index) { return run_stride_on(rows[index].cfg,
                                            rows[index].stride); });
  for (size_t row = 0; row < rows.size(); ++row) {
    table.add_row({report::Value::text(rows[row].label),
                   report::Value::uinteger(cycles[row])});
  }
}

void llc_geometry_ablation(const batch::SweepEngine& engine,
                           report::MetricsReport& rep) {
  report::Table& table = rep.add_table(
      "B. LLC geometry (cycles, 96 kB-footprint stride benchmark on "
      "HyperRAM)",
      {"configuration", "cycles"});
  std::vector<LabelledConfig> rows;
  for (const u32 lines : {64u, 128u, 256u, 512u}) {
    core::SocConfig cfg;
    cfg.llc.num_lines = lines;
    rows.push_back({"size " + std::to_string(cfg.llc.size_bytes() / 1024) +
                        " kB (lines=" + std::to_string(lines) + ")",
                    cfg, 96});
  }
  for (const u32 ways : {1u, 2u, 8u}) {
    core::SocConfig cfg;
    cfg.llc.num_ways = ways;
    cfg.llc.num_lines = 2048 / ways;  // hold 128 kB constant
    rows.push_back(
        {"ways " + std::to_string(ways) + " (128 kB const)", cfg, 96});
  }
  add_labelled_rows(engine, table, rows);
}

void hyperbus_knobs_ablation(const batch::SweepEngine& engine,
                             report::MetricsReport& rep) {
  report::Table& table = rep.add_table(
      "C. HyperBUS controller knobs (cycles, 1 MB-footprint stream, no "
      "LLC)",
      {"configuration", "cycles"});
  std::vector<LabelledConfig> rows;
  for (const u32 burst : {64u, 128u, 256u, 512u, 1024u}) {
    core::SocConfig cfg;
    cfg.enable_llc = false;
    cfg.hyperram.max_burst_bytes = burst;
    rows.push_back({"max burst " + std::to_string(burst) + " B", cfg, 1024});
  }
  for (const Cycles refresh : {500u, 2000u, 4000u, 16000u}) {
    core::SocConfig cfg;
    cfg.enable_llc = false;
    cfg.hyperram.refresh_period = refresh;
    rows.push_back(
        {"refresh period " + std::to_string(refresh) + " cyc", cfg, 1024});
  }
  add_labelled_rows(engine, table, rows);
}

void mmu_ablation(const batch::SweepEngine& engine,
                  report::MetricsReport& rep) {
  // A 1 MB streaming footprint touches 256 data pages — far beyond the
  // TLB — so page-table-walk cost is visible; a 64 kB CRC (16 pages)
  // fits any TLB and shows the zero-overhead steady state.
  report::Table& table = rep.add_table(
      "D. SV39 MMU translation overhead (1 MB stream, 256 pages)",
      {"configuration", "cycles", "tlb_hit_ratio"});
  struct Point {
    Cycles cycles = 0;
    double hit_ratio = 0;
  };
  const std::array<u32, 4> tlb_grid = {0u, 4u, 16u, 64u};
  const std::vector<Point> points = engine.map<Point>(
      tlb_grid.size(), [&](u64 index) {
        const u32 tlb_entries = tlb_grid[index];
        core::SocConfig cfg;
        cfg.host.enable_mmu = tlb_entries > 0;
        if (tlb_entries > 0) cfg.host.tlb.entries = tlb_entries;
        core::HulkVSoc soc(cfg);
        const std::array<u64, 1> args = {core::layout::kSharedBase};
        kernels::run_host_program(
            soc, kernels::host_stride_reads(1024, 1024, 2), args);
        const auto run = kernels::run_host_program(
            soc, kernels::host_stride_reads(1024, 1024, 10), args);
        return Point{run.cycles, tlb_entries == 0
                                     ? 0.0
                                     : soc.host().dtlb()->hit_ratio()};
      });
  for (size_t row = 0; row < tlb_grid.size(); ++row) {
    if (tlb_grid[row] == 0) {
      table.add_row({report::Value::text("bare-metal (no MMU)"),
                     report::Value::uinteger(points[row].cycles),
                     report::Value::text("-")});
    } else {
      table.add_row(
          {report::Value::text("MMU on, " + std::to_string(tlb_grid[row]) +
                               "-entry TLB"),
           report::Value::uinteger(points[row].cycles),
           report::Value::number(points[row].hit_ratio, 3)});
    }
  }
}

void precision_ablation(const batch::SweepEngine& engine,
                        report::MetricsReport& rep) {
  // The mechanism behind Fig. 6 (section VI-A): reduced precision
  // unlocks the SIMD datapath. Same 48x48x64 matmul, int32 scalar
  // (p.mac) vs int8 SIMD (pv.sdotsp.b.ld + MAC&Load).
  report::Table& table = rep.add_table(
      "F. Reduced-precision ablation (48x48x64 matmul on the PMCA)",
      {"datapath", "kernel_cycles", "mac_per_cycle"});
  const u32 m = 48, n = 48, k = 64;
  const std::vector<Cycles> kernel_cycles = engine.map<Cycles>(
      2, [&](u64 index) {
        const bool reduced = index == 1;
        core::HulkVSoc soc;
        runtime::OffloadRuntime rt(&soc);
        Xoshiro256 rng(3);
        const u32 elem = reduced ? 1 : 4;
        const Addr pa = rt.hulk_malloc(u64{m} * k * elem);
        const Addr pbt = rt.hulk_malloc(u64{n} * k * elem);
        const Addr pc = rt.hulk_malloc(u64{m} * n * 4);
        std::vector<u8> junk(u64{n} * k * elem);
        for (auto& b : junk) b = static_cast<u8>(rng.next());
        soc.write_mem(pa, junk.data(), u64{m} * k * elem);
        soc.write_mem(pbt, junk.data(), u64{n} * k * elem);
        const u32 l1 = static_cast<u32>(mem::map::kTcdmBase) + 0x100;
        const std::array<u32, 6> args = {
            static_cast<u32>(pa),  static_cast<u32>(pbt),
            static_cast<u32>(pc),  l1,
            l1 + m * k * elem,     l1 + (m + n) * k * elem};
        const auto program = reduced ? kernels::cluster_matmul_i8(m, n, k)
                                     : kernels::cluster_matmul_i32(m, n, k);
        const auto handle =
            rt.register_kernel("mm", program.words, program.symbols);
        rt.preload(handle);
        return rt.offload(handle, args).kernel;
      });
  for (size_t row = 0; row < kernel_cycles.size(); ++row) {
    table.add_row(
        {report::Value::text(row == 1 ? "int8 SIMD + MAC&Load"
                                      : "int32 scalar p.mac"),
         report::Value::uinteger(kernel_cycles[row]),
         report::Value::number(static_cast<double>(u64{m} * n * k) /
                                   static_cast<double>(kernel_cycles[row]),
                               2)});
  }
}

void latency_ladder(const batch::SweepEngine& engine,
                    report::MetricsReport& rep) {
  // Pointer chase: load-to-use latency of each level of the hierarchy,
  // per memory configuration.
  report::Table& table = rep.add_table(
      "G. Load-to-use latency ladder (pointer chase, cycles/load)",
      {"footprint_kb", "ddr4_llc", "hyper_llc", "hyper"});
  const std::array<u64, 3> footprints = {16ull * 1024, 96ull * 1024,
                                         1024ull * 1024};
  constexpr std::array<std::pair<core::MainMemoryKind, bool>, 3> kLadder = {
      std::pair{core::MainMemoryKind::kDdr4, true},
      std::pair{core::MainMemoryKind::kHyperRam, true},
      std::pair{core::MainMemoryKind::kHyperRam, false}};
  const std::vector<double> cols = engine.map<double>(
      footprints.size() * kLadder.size(), [&](u64 index) {
        const u64 footprint = footprints[index / kLadder.size()];
        const auto& [kind, llc] = kLadder[index % kLadder.size()];
        core::SocConfig cfg;
        cfg.main_memory = kind;
        cfg.enable_llc = llc;
        core::HulkVSoc soc(cfg);
        // Build a line-granular ring with a large stride (defeats any
        // spatial locality) covering `footprint` bytes.
        const u64 slots = footprint / 64;
        const Addr base = core::layout::kSharedBase;
        Xoshiro256 rng(9);
        std::vector<u64> order(slots);
        for (u64 i = 0; i < slots; ++i) order[i] = i;
        for (u64 i = slots - 1; i > 0; --i) {
          std::swap(order[i], order[rng.next_below(i + 1)]);
        }
        for (u64 i = 0; i < slots; ++i) {
          const u64 next = base + order[(i + 1) % slots] * 64;
          soc.write_mem(base + order[i] * 64, &next, 8);
        }
        const u32 count = 4096;
        const auto prog = kernels::host_pointer_chase(count);
        const std::array<u64, 1> args = {base + order[0] * 64};
        kernels::run_host_program(soc, prog, args);  // warm
        const auto run = kernels::run_host_program(soc, prog, args);
        return static_cast<double>(run.cycles) / count;
      });
  for (size_t row = 0; row < footprints.size(); ++row) {
    const double* c = &cols[row * kLadder.size()];
    table.add_row({report::Value::uinteger(footprints[row] / 1024),
                   report::Value::number(c[0], 1),
                   report::Value::number(c[1], 1),
                   report::Value::number(c[2], 1)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const report::BenchOptions options = report::parse_bench_args(argc, argv);
  isa::configure_tier(options);
  profile::configure(options);
  telemetry::configure(options);

  report::MetricsReport rep("ablation_memsys");
  rep.add_note("HULK-V design-choice ablations");
  const batch::SweepEngine engine(options.jobs);
  memory_family_ablation(engine, rep);
  llc_geometry_ablation(engine, rep);
  hyperbus_knobs_ablation(engine, rep);
  mmu_ablation(engine, rep);
  precision_ablation(engine, rep);
  latency_ladder(engine, rep);
  rep.add_note("E. Voltage/frequency corners (GF22 FDX):\n" +
               power::render_corner_table(power::PowerModel{}));
  profile::finish_bench(rep, options);
  report::finish_bench(rep, options);
  telemetry::finish_bench(rep, options);
  return 0;
}
