#include "cluster/tcdm.hpp"

#include <algorithm>

#include "profile/attr.hpp"

namespace hulkv::cluster {

namespace {
/// TCDM accesses are batched in the trace (one counter event per batch);
/// conflicts are rare enough to record individually.
constexpr u32 kAccessBatchSize = 256;
}  // namespace

Tcdm::Tcdm(const TcdmConfig& config)
    : config_(config),
      storage_(config.total_bytes(), 0),
      bank_free_(config.num_banks, 0),
      stats_("tcdm"),
      ctr_accesses_(stats_.counter("accesses")),
      ctr_conflicts_(stats_.counter("conflicts")) {
  HULKV_CHECK(config.num_banks >= 1, "TCDM needs banks");
}

void Tcdm::trace_access(Cycles now) {
  if (++pending_accesses_ < kAccessBatchSize) return;
  auto& sink = trace::sink();
  sink.counter(sink.resolve(trace_track_, stats_.name()),
               trace::Ev::kAccessBatch, now, pending_accesses_);
  pending_accesses_ = 0;
}

Cycles Tcdm::access(Cycles now, Addr offset, u32 bytes) {
  HULKV_CHECK(offset + bytes <= storage_.size(), "TCDM access out of range");
  ctr_accesses_ += 1;
  if (trace::enabled()) trace_access(now);

  // A scalar access touches one bank; a wide (DMA) access touches
  // ceil(bytes/word) consecutive banks, one word per bank per cycle.
  // Iterate the word-aligned span so an unaligned access that straddles
  // two words pays both banks (RI5CY splits such accesses in two).
  Cycles done = now;
  const Addr first = offset & ~static_cast<Addr>(config_.word_bytes - 1);
  for (Addr a = first; a < offset + bytes; a += config_.word_bytes) {
    const u32 bank = bank_of(a);
    const Cycles start = std::max(now, bank_free_[bank]);
    if (start > now) {
      ctr_conflicts_ += 1;
      if (trace::enabled()) {
        auto& sink = trace::sink();
        sink.instant(sink.resolve(trace_track_, stats_.name()),
                     trace::Ev::kConflict, now, bank, start - now);
      }
    }
    bank_free_[bank] = start + 1;
    done = std::max(done, start + 1);
  }
  // done == now + 1 is the conflict-free single-cycle access; anything
  // beyond that is bank serialization, which the issuing core waits out
  // (it folds this completion time into its clock with a max()).
  profile::add(profile::Reason::kTcdmConflict, done - now - 1);
  return done;
}

void Tcdm::serialize(snapshot::Archive& ar) {
  ar.bytes(storage_.data(), storage_.size());
  ar.pod_vec(bank_free_);
  stats_.serialize(ar);
  ar.pod(pending_accesses_);
}

void Tcdm::reset() {
  std::fill(storage_.begin(), storage_.end(), 0);
  std::fill(bank_free_.begin(), bank_free_.end(), 0);
  stats_.reset();
  pending_accesses_ = 0;
}

}  // namespace hulkv::cluster
