// Regenerates Table II (per-block area / leakage / dynamic power / fmax /
// max power in GF22 FDX) and the Fig. 5 area accounting.
#include <cstdio>

#include "power/power_model.hpp"

int main() {
  const hulkv::power::PowerModel model;
  std::puts(hulkv::power::render_power_table(model).c_str());
  std::printf("Power envelope check: total max power %.2f mW (< 250 mW)\n",
              model.total_max_power_mw());
  std::printf("Die area check: %.2f mm^2 (< 9 mm^2)\n\n",
              model.die_area_mm2());
  std::puts(hulkv::power::render_floorplan(model).c_str());
  std::puts(hulkv::power::render_corner_table(model).c_str());
  return 0;
}
