// hulkv::batch: worker pool, snapshot forking, report merging.
//
// The determinism contract under test: results land in pre-allocated
// index slots, so a sweep's output is identical for every worker count.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <numeric>
#include <vector>

#include "batch/batch.hpp"
#include "core/soc.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "report/report.hpp"
#include "trace/trace.hpp"

namespace {

using namespace hulkv;

TEST(RunJobs, EveryJobRunsExactlyOnce) {
  constexpr u64 kCount = 64;
  std::vector<std::atomic<u32>> hits(kCount);
  batch::run_jobs(kCount, 4, [&](u64 index) { hits[index].fetch_add(1); });
  for (u64 i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "job " << i;
  }
}

TEST(RunJobs, ContendedQueueStress) {
  // Many tiny jobs on an oversubscribed pool: the handout counter and
  // the per-slot writes are the surfaces a queue race would corrupt.
  // Run under -DHULKV_SANITIZE=thread this is the TSan gate for the
  // job queue (scripts/ci.sh).
  constexpr u64 kCount = 4096;
  std::vector<u64> slot(kCount, 0);
  std::atomic<u64> sum{0};
  batch::run_jobs(kCount, 8, [&](u64 index) {
    slot[index] = index + 1;  // distinct slot: no synchronisation needed
    sum.fetch_add(index, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kCount * (kCount - 1) / 2);
  for (u64 i = 0; i < kCount; ++i) ASSERT_EQ(slot[i], i + 1);
}

TEST(RunJobs, SerialPathRunsInIndexOrder) {
  std::vector<u64> order;
  batch::run_jobs(16, 1, [&](u64 index) { order.push_back(index); });
  std::vector<u64> expected(16);
  std::iota(expected.begin(), expected.end(), u64{0});
  EXPECT_EQ(order, expected);
}

TEST(RunJobs, ZeroJobsIsANoOp) {
  batch::run_jobs(0, 4, [&](u64) { FAIL() << "job ran"; });
}

TEST(RunJobs, JobExceptionPropagates) {
  EXPECT_THROW(batch::run_jobs(8, 4,
                               [&](u64 index) {
                                 if (index == 5) {
                                   throw SimError("boom from job 5");
                                 }
                               }),
               SimError);
}

TEST(RunJobs, SerialJobExceptionPropagates) {
  EXPECT_THROW(
      batch::run_jobs(2, 1, [&](u64) { throw SimError("serial boom"); }),
      SimError);
}

TEST(RunJobs, RefusesParallelismWhileTracing) {
  trace::sink().clear();
  trace::sink().enable();
  EXPECT_THROW(batch::run_jobs(4, 2, [](u64) {}), SimError);
  // The serial path stays usable under tracing.
  u32 ran = 0;
  batch::run_jobs(4, 1, [&](u64) { ++ran; });
  EXPECT_EQ(ran, 4u);
  trace::sink().disable();
  trace::sink().clear();
}

TEST(SweepEngine, DefaultsToHardwareConcurrency) {
  EXPECT_EQ(batch::SweepEngine().workers(), batch::default_jobs());
  EXPECT_EQ(batch::SweepEngine(3).workers(), 3u);
  EXPECT_GE(batch::default_jobs(), 1u);
}

TEST(SweepEngine, ParallelMapEqualsSerialMap) {
  // A real (small) simulation per point: the parallel sweep must land
  // cycle counts identical to the serial one, in the same slots.
  const auto point = [](u64 index) {
    core::SocConfig cfg;
    cfg.llc.num_lines = 64u << index;
    core::HulkVSoc soc(cfg);
    const auto prog = kernels::host_stride_reads(128, 256, 3);
    return kernels::run_host_program(
               soc, prog.words,
               std::array<u64, 1>{core::layout::kSharedBase})
        .cycles;
  };
  const std::vector<Cycles> serial =
      batch::SweepEngine(1).map<Cycles>(3, point);
  const std::vector<Cycles> parallel =
      batch::SweepEngine(3).map<Cycles>(3, point);
  EXPECT_EQ(serial, parallel);
}

TEST(SweepEngine, MapForkedMatchesSerialContinuation) {
  // Warm a SoC, checkpoint it, then fork the sweep from the snapshot:
  // every forked point must behave exactly like the warmed original.
  core::SocConfig cfg;
  core::HulkVSoc warmed(cfg);
  const auto prog = kernels::host_stride_reads(64, 512, 4);
  const std::array<u64, 1> args = {core::layout::kSharedBase};
  kernels::run_host_program(warmed, prog.words, args);  // warm-up
  const batch::SocSnapshot snap = batch::SocSnapshot::capture(warmed);
  EXPECT_FALSE(snap.empty());

  // Reference: continue the warmed SoC itself.
  const Cycles reference =
      kernels::run_host_program(warmed, prog.words, args).cycles;

  const std::vector<Cycles> forked =
      batch::SweepEngine(3).map_forked<Cycles>(
          snap, 4, [&] { return std::make_unique<core::HulkVSoc>(cfg); },
          [&](core::HulkVSoc& soc, u64) {
            return kernels::run_host_program(soc, prog.words, args).cycles;
          });
  for (u64 i = 0; i < forked.size(); ++i) {
    EXPECT_EQ(forked[i], reference) << "fork " << i;
  }
}

TEST(MergeReports, KeepsIndexOrder) {
  std::vector<report::MetricsReport> parts;
  for (u32 i = 0; i < 3; ++i) {
    report::MetricsReport part("part" + std::to_string(i));
    part.add_metric("m" + std::to_string(i), report::Value::uinteger(i),
                    "u");
    part.add_note("note " + std::to_string(i));
    report::Table t("table " + std::to_string(i), {"col"});
    t.add_row({report::Value::uinteger(i)});
    part.add_table(std::move(t));
    parts.push_back(std::move(part));
  }
  const report::MetricsReport merged = batch::merge_reports("all", parts);
  EXPECT_EQ(merged.name(), "all");
  ASSERT_EQ(merged.metrics().size(), 3u);
  ASSERT_EQ(merged.tables().size(), 3u);
  ASSERT_EQ(merged.notes().size(), 3u);
  for (u32 i = 0; i < 3; ++i) {
    EXPECT_EQ(merged.metrics()[i].key, "m" + std::to_string(i));
    EXPECT_EQ(merged.tables()[i].title(), "table " + std::to_string(i));
    EXPECT_EQ(merged.notes()[i], "note " + std::to_string(i));
  }
}

TEST(SweepEngine, MapReportsMergesInOrder) {
  const report::MetricsReport merged =
      batch::SweepEngine(2).map_reports("sweep", 4, [](u64 index) {
        report::MetricsReport part("p");
        part.add_metric("index", report::Value::uinteger(index));
        return part;
      });
  ASSERT_EQ(merged.metrics().size(), 4u);
  for (u64 i = 0; i < 4; ++i) {
    EXPECT_EQ(merged.metrics()[i].value.as_double(),
              static_cast<double>(i));
  }
}

TEST(BenchOptions, ParsesJobs) {
  const char* argv_jobs[] = {"bench", "--jobs", "7"};
  EXPECT_EQ(report::parse_bench_args(3, const_cast<char**>(argv_jobs)).jobs,
            7u);
  const char* argv_plain[] = {"bench"};
  EXPECT_EQ(
      report::parse_bench_args(1, const_cast<char**>(argv_plain)).jobs, 0u);
}

}  // namespace
