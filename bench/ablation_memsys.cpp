// Ablation studies on the design choices behind HULK-V's fully digital
// memory hierarchy (beyond the paper's reported configurations):
//
//  A. IoT-memory family: HyperRAM vs RPC DRAM ([8]) vs idealised DDR4,
//     with and without the LLC, on the synthetic benchmark.
//  B. LLC geometry: size and associativity sensitivity (section III-A's
//     parameterization).
//  C. HyperBUS controller knobs: burst length and refresh period.
//  D. SV39 MMU translation overhead (the cost of being Linux-capable),
//     TLB-size sensitivity.
//  E. Voltage/frequency corners of the GF22 implementation.
#include <cstdio>
#include <string>

#include "core/soc.hpp"
#include "kernels/golden.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "common/rng.hpp"
#include "runtime/offload.hpp"
#include "power/power_model.hpp"

namespace {

using namespace hulkv;

Cycles run_stride_on(core::SocConfig cfg, u32 stride, u32 reads = 1024,
                     u32 rounds = 10) {
  core::HulkVSoc soc(cfg);
  const std::array<u64, 1> args = {core::layout::kSharedBase};
  kernels::run_host_program(
      soc, kernels::host_stride_reads(stride, reads, 2).words, args);
  return kernels::run_host_program(
             soc, kernels::host_stride_reads(stride, reads, rounds).words,
             args)
      .cycles;
}

void memory_family_ablation() {
  std::printf("A. IoT-memory family (cycles, stride benchmark):\n");
  std::printf("%-10s | %12s %12s %12s\n", "", "64 kB fp", "256 kB fp",
              "1 MB fp");
  for (const bool llc : {true, false}) {
    for (const auto [kind, name] :
         {std::pair{core::MainMemoryKind::kHyperRam, "HyperRAM"},
          std::pair{core::MainMemoryKind::kRpcDram, "RPC-DRAM"},
          std::pair{core::MainMemoryKind::kDdr4, "DDR4"}}) {
      core::SocConfig cfg;
      cfg.main_memory = kind;
      cfg.enable_llc = llc;
      std::printf("%-8s%2s | %12llu %12llu %12llu\n", name,
                  llc ? "+$" : "  ",
                  static_cast<unsigned long long>(run_stride_on(cfg, 64)),
                  static_cast<unsigned long long>(run_stride_on(cfg, 256)),
                  static_cast<unsigned long long>(run_stride_on(cfg, 1024)));
    }
  }
  std::printf("   (RPC DRAM: x16 DDR + row buffers — between HyperRAM and "
              "the idealised DDR4,\n    confirming the paper's 'IoT memory "
              "family' framing)\n\n");
}

void llc_geometry_ablation() {
  std::printf("B. LLC geometry (cycles, 96 kB-footprint stride "
              "benchmark on HyperRAM):\n");
  std::printf("   %-28s %12s\n", "configuration", "cycles");
  for (const u32 lines : {64u, 128u, 256u, 512u}) {
    core::SocConfig cfg;
    cfg.llc.num_lines = lines;
    std::printf("   size %4u kB (lines=%4u)    %12llu\n",
                cfg.llc.size_bytes() / 1024, lines,
                static_cast<unsigned long long>(run_stride_on(cfg, 96)));
  }
  for (const u32 ways : {1u, 2u, 8u}) {
    core::SocConfig cfg;
    cfg.llc.num_ways = ways;
    cfg.llc.num_lines = 2048 / ways;  // hold 128 kB constant
    std::printf("   ways %2u   (128 kB const)    %12llu\n", ways,
                static_cast<unsigned long long>(run_stride_on(cfg, 96)));
  }
  std::printf("\n");
}

void hyperbus_knobs_ablation() {
  std::printf("C. HyperBUS controller knobs (cycles, 1 MB-footprint "
              "stream, no LLC):\n");
  std::printf("   %-30s %12s\n", "configuration", "cycles");
  for (const u32 burst : {64u, 128u, 256u, 512u, 1024u}) {
    core::SocConfig cfg;
    cfg.enable_llc = false;
    cfg.hyperram.max_burst_bytes = burst;
    std::printf("   max burst %5u B             %12llu\n", burst,
                static_cast<unsigned long long>(run_stride_on(cfg, 1024)));
  }
  for (const Cycles refresh : {500u, 2000u, 4000u, 16000u}) {
    core::SocConfig cfg;
    cfg.enable_llc = false;
    cfg.hyperram.refresh_period = refresh;
    std::printf("   refresh period %6llu cyc     %12llu\n",
                static_cast<unsigned long long>(refresh),
                static_cast<unsigned long long>(run_stride_on(cfg, 1024)));
  }
  std::printf("\n");
}

void mmu_ablation() {
  // A 1 MB streaming footprint touches 256 data pages — far beyond the
  // TLB — so page-table-walk cost is visible; a 64 kB CRC (16 pages)
  // fits any TLB and shows the zero-overhead steady state.
  std::printf("D. SV39 MMU translation overhead:\n");
  std::printf("   1 MB stream (256 pages):\n");
  for (const u32 tlb_entries : {0u, 4u, 16u, 64u}) {
    core::SocConfig cfg;
    cfg.host.enable_mmu = tlb_entries > 0;
    if (tlb_entries > 0) cfg.host.tlb.entries = tlb_entries;
    core::HulkVSoc soc(cfg);
    const std::array<u64, 1> args = {core::layout::kSharedBase};
    kernels::run_host_program(
        soc, kernels::host_stride_reads(1024, 1024, 2).words, args);
    const auto run = kernels::run_host_program(
        soc, kernels::host_stride_reads(1024, 1024, 10).words, args);
    if (tlb_entries == 0) {
      std::printf("     bare-metal (no MMU)        %12llu cycles\n",
                  static_cast<unsigned long long>(run.cycles));
    } else {
      std::printf("     MMU on, %3u-entry TLB      %12llu cycles  "
                  "(TLB hit ratio %.3f)\n",
                  tlb_entries,
                  static_cast<unsigned long long>(run.cycles),
                  soc.host().dtlb()->hit_ratio());
    }
  }
  std::printf("\n");
}

void precision_ablation() {
  // The mechanism behind Fig. 6 (section VI-A): reduced precision
  // unlocks the SIMD datapath. Same 48x48x64 matmul, int32 scalar
  // (p.mac) vs int8 SIMD (pv.sdotsp.b.ld + MAC&Load).
  std::printf("F. Reduced-precision ablation (48x48x64 matmul on the "
              "PMCA):\n");
  const u32 m = 48, n = 48, k = 64;
  for (const bool reduced : {false, true}) {
    core::HulkVSoc soc;
    runtime::OffloadRuntime rt(&soc);
    Xoshiro256 rng(3);
    const u32 elem = reduced ? 1 : 4;
    const Addr pa = rt.hulk_malloc(u64{m} * k * elem);
    const Addr pbt = rt.hulk_malloc(u64{n} * k * elem);
    const Addr pc = rt.hulk_malloc(u64{m} * n * 4);
    std::vector<u8> junk(u64{n} * k * elem);
    for (auto& b : junk) b = static_cast<u8>(rng.next());
    soc.write_mem(pa, junk.data(), u64{m} * k * elem);
    soc.write_mem(pbt, junk.data(), u64{n} * k * elem);
    const u32 l1 = static_cast<u32>(mem::map::kTcdmBase) + 0x100;
    const std::array<u32, 6> args = {
        static_cast<u32>(pa),  static_cast<u32>(pbt), static_cast<u32>(pc),
        l1,                    l1 + m * k * elem,
        l1 + (m + n) * k * elem};
    const auto program = reduced ? kernels::cluster_matmul_i8(m, n, k)
                                 : kernels::cluster_matmul_i32(m, n, k);
    const auto handle = rt.register_kernel("mm", program.words);
    rt.preload(handle);
    const auto result = rt.offload(handle, args);
    std::printf("   %-22s %10llu cycles  (%.2f MAC/cycle across 8 cores)\n",
                reduced ? "int8 SIMD + MAC&Load" : "int32 scalar p.mac",
                static_cast<unsigned long long>(result.kernel),
                static_cast<double>(u64{m} * n * k) /
                    static_cast<double>(result.kernel));
  }
  std::printf("\n");
}

void latency_ladder() {
  // Pointer chase: load-to-use latency of each level of the hierarchy,
  // per memory configuration.
  std::printf("G. Load-to-use latency ladder (pointer chase, "
              "cycles/load):\n");
  std::printf("   %-10s | %10s %10s %10s\n", "footprint", "DDR4+LLC",
              "Hyper+LLC", "Hyper");
  for (const u64 footprint :
       {16ull * 1024, 96ull * 1024, 1024ull * 1024}) {
    double cols[3];
    int col = 0;
    for (const auto& [kind, llc] :
         {std::pair{core::MainMemoryKind::kDdr4, true},
          std::pair{core::MainMemoryKind::kHyperRam, true},
          std::pair{core::MainMemoryKind::kHyperRam, false}}) {
      core::SocConfig cfg;
      cfg.main_memory = kind;
      cfg.enable_llc = llc;
      core::HulkVSoc soc(cfg);
      // Build a line-granular ring with a large stride (defeats any
      // spatial locality) covering `footprint` bytes.
      const u64 slots = footprint / 64;
      const Addr base = core::layout::kSharedBase;
      Xoshiro256 rng(9);
      std::vector<u64> order(slots);
      for (u64 i = 0; i < slots; ++i) order[i] = i;
      for (u64 i = slots - 1; i > 0; --i) {
        std::swap(order[i], order[rng.next_below(i + 1)]);
      }
      for (u64 i = 0; i < slots; ++i) {
        const u64 next = base + order[(i + 1) % slots] * 64;
        soc.write_mem(base + order[i] * 64, &next, 8);
      }
      const u32 count = 4096;
      const auto prog = kernels::host_pointer_chase(count);
      const std::array<u64, 1> args = {base + order[0] * 64};
      kernels::run_host_program(soc, prog.words, args);  // warm
      const auto run = kernels::run_host_program(soc, prog.words, args);
      cols[col++] = static_cast<double>(run.cycles) / count;
    }
    std::printf("   %7llu kB | %10.1f %10.1f %10.1f\n",
                static_cast<unsigned long long>(footprint / 1024), cols[0],
                cols[1], cols[2]);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("HULK-V design-choice ablations\n");
  std::printf("%s\n\n", std::string(64, '=').c_str());
  memory_family_ablation();
  llc_geometry_ablation();
  hyperbus_knobs_ablation();
  mmu_ablation();
  precision_ablation();
  latency_ladder();
  std::printf("E. Voltage/frequency corners (GF22 FDX):\n");
  std::printf("%s", power::render_corner_table(power::PowerModel{}).c_str());
  return 0;
}
