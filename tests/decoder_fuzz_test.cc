// Decoder fuzzing: random 32-bit words must decode without crashing, and
// every word the decoder accepts must re-encode to the same word (the
// decoder never invents don't-care bits). FENCE is the one designed
// exception: all fence-operand variants collapse to a canonical word.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/parser.hpp"

namespace hulkv::isa {
namespace {

TEST(DecoderFuzz, RandomWordsNeverCrashAndRoundTrip) {
  Xoshiro256 rng(0xF00D);
  u64 accepted = 0;
  for (int i = 0; i < 2'000'000; ++i) {
    const u32 word = static_cast<u32>(rng.next());
    const Instr decoded = decode(word);
    if (decoded.op == Op::kIllegal) continue;
    ++accepted;
    if (decoded.op == Op::kFence) continue;  // canonicalised by design
    const u32 re = encode(decoded);
    ASSERT_EQ(re, word) << "word 0x" << std::hex << word << " decoded as '"
                        << disasm(decoded) << "' but re-encodes to 0x" << re;
  }
  // Sanity: the fuzz actually exercised the decoder (the used opcode
  // space is sparse but not empty).
  EXPECT_GT(accepted, 1000u);
}

TEST(DecoderFuzz, BiasedTowardsValidOpcodesRoundTrips) {
  // Second pass biased to hit real major opcodes much more often: take a
  // valid encoding and flip random fields.
  Xoshiro256 rng(0xBEEF);
  const u32 seeds[] = {
      encode({.op = Op::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3}),
      encode({.op = Op::kLw, .rd = 4, .rs1 = 5, .imm = 16}),
      encode({.op = Op::kFmaddS, .rd = 1, .rs1 = 2, .rs2 = 3, .rs3 = 4}),
      encode({.op = Op::kPvSdotspB, .rd = 6, .rs1 = 7, .rs2 = 8}),
      encode({.op = Op::kLpSetup, .rd = 0, .rs1 = 9, .imm = 16}),
      encode({.op = Op::kCsrrs, .rd = 1, .rs1 = 0, .imm = 0xC00}),
  };
  for (int i = 0; i < 500'000; ++i) {
    u32 word = seeds[rng.next_below(std::size(seeds))];
    // Flip 1-8 random bits above the opcode field.
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      word ^= 1u << (7 + rng.next_below(25));
    }
    const Instr decoded = decode(word);
    if (decoded.op == Op::kIllegal || decoded.op == Op::kFence) continue;
    ASSERT_EQ(encode(decoded), word)
        << "word 0x" << std::hex << word << " -> " << disasm(decoded);
  }
}

TEST(DecoderFuzz, DisasmNeverCrashesOnAnyWord) {
  Xoshiro256 rng(0xD15A);
  for (int i = 0; i < 200'000; ++i) {
    const std::string text = disasm_word(static_cast<u32>(rng.next()));
    ASSERT_FALSE(text.empty());
  }
}

TEST(DecoderFuzz, DisasmReParseRoundTrips) {
  // Full-pipeline property: every word the decoder accepts must survive
  // decode -> disasm -> parse_program -> encode unchanged. This pins the
  // textual syntax to the binary encoding from both sides (and is the
  // substrate the static analyzer's diagnostics print with).
  Xoshiro256 rng(0x5EED);
  const u32 seeds[] = {
      encode({.op = Op::kAdd, .rd = 1, .rs1 = 2, .rs2 = 3}),
      encode({.op = Op::kLw, .rd = 4, .rs1 = 5, .imm = 16}),
      encode({.op = Op::kSd, .rs1 = 2, .rs2 = 8, .imm = -32}),
      encode({.op = Op::kBne, .rs1 = 6, .rs2 = 7, .imm = 64}),
      encode({.op = Op::kJal, .rd = 1, .imm = -2048}),
      encode({.op = Op::kLui, .rd = 9, .imm = 0x12345000}),
      encode({.op = Op::kFmaddS, .rd = 1, .rs1 = 2, .rs2 = 3, .rs3 = 4}),
      encode({.op = Op::kFcvtWS, .rd = 5, .rs1 = 6}),
      encode({.op = Op::kPvSdotspB, .rd = 6, .rs1 = 7, .rs2 = 8}),
      encode({.op = Op::kPLwPost, .rd = 10, .rs1 = 11, .imm = 4}),
      encode({.op = Op::kLpSetup, .rd = 0, .rs1 = 9, .imm = 16}),
      encode({.op = Op::kCsrrs, .rd = 1, .rs1 = 0, .imm = 0xC00}),
  };
  u64 parsed = 0;
  for (int i = 0; i < 120'000; ++i) {
    u32 word = seeds[rng.next_below(std::size(seeds))];
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f) {
      word ^= 1u << (7 + rng.next_below(25));
    }
    const Instr decoded = decode(word);
    if (decoded.op == Op::kIllegal || decoded.op == Op::kFence) continue;
    const std::string text = disasm(decoded);
    std::vector<u32> rewords;
    ASSERT_NO_THROW(rewords = parse_program(text, /*base=*/0, /*rv64=*/true))
        << "word 0x" << std::hex << word << " disasm '" << text
        << "' does not re-parse";
    ASSERT_EQ(rewords.size(), 1u) << text;
    ASSERT_EQ(rewords[0], word)
        << "word 0x" << std::hex << word << " -> '" << text
        << "' -> 0x" << rewords[0];
    ++parsed;
  }
  EXPECT_GT(parsed, 10'000u);
}

}  // namespace
}  // namespace hulkv::isa
