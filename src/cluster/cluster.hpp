// Programmable Multi-Core Accelerator: 8 RV32-DSP cores, 16-bank TCDM,
// two-level I-cache, event unit and cluster DMA (paper section III-C,
// figure 1 right half).
//
// The cluster executes *kernels*: all cores are dispatched at an entry
// point (the event unit's fine-grain thread dispatch), partition work by
// hart id, synchronise on event-unit barriers, and finish through the
// envcall::kExit service. The per-core clocks advance independently and
// the scheduler always steps the laggard core, so TCDM bank conflicts and
// DMA overlap are modelled consistently (DESIGN.md section 4).
#pragma once

#include <memory>
#include <vector>

#include "cluster/cluster_dma.hpp"
#include "cluster/event_unit.hpp"
#include "cluster/icache.hpp"
#include "cluster/pmca_core.hpp"
#include "cluster/sched.hpp"
#include "cluster/tcdm.hpp"
#include "mem/interconnect.hpp"

namespace hulkv::cluster {

struct ClusterConfig {
  u32 num_cores = 8;
  TcdmConfig tcdm;
  ClusterIcacheConfig icache;
  PmcaCoreConfig core;          // per-core latencies (core_id is set per core)
  Cycles dispatch_latency = 5;  // event-unit wake-up at kernel start
};

class Cluster {
 public:
  Cluster(const ClusterConfig& config, mem::SocBus* bus);

  /// Result of one kernel execution on the cluster.
  struct KernelResult {
    Cycles start = 0;    // dispatch cycle
    Cycles finish = 0;   // last core's exit cycle
    Cycles cycles = 0;   // finish - start
    u64 instret = 0;     // instructions retired across all cores
  };

  /// Dispatch a team of `team_size` cores at `entry` (code must already
  /// be visible through the SoC bus, normally in the L2SPM). `arg0` is
  /// passed in a0 of every core (by convention a pointer to an argument
  /// record in TCDM). Runs to completion and returns the timing.
  /// `team_size` = 0 (default) dispatches every core; smaller teams model
  /// OpenMP num_threads() clauses — the event unit only wakes (and
  /// barriers) the dispatched cores, the rest stay clock-gated.
  KernelResult run_kernel(Cycles start_time, Addr entry, u32 arg0,
                          u32 team_size = 0);

  /// Invalidate instruction caches and decoded-instruction caches (call
  /// after loading a new kernel image).
  void on_code_loaded();
  /// Range-scoped variant: the I-cache flush is unconditional (it is
  /// timing-visible), but each core's decoded-block invalidation is a
  /// no-op unless [base, base+bytes) overlaps code it translated.
  void on_code_loaded(Addr base, u64 bytes);

  Tcdm& tcdm() { return tcdm_; }
  ClusterDma& dma() { return dma_; }
  EventUnit& event_unit() { return *event_unit_; }
  ClusterIcache& icache() { return icache_; }
  PmcaCore& core(u32 index) { return *cores_[index]; }
  u32 num_cores() const { return config_.num_cores; }
  const ClusterConfig& config() const { return config_; }

  /// TCDM base address in the SoC map.
  Addr tcdm_base() const { return mem::map::kTcdmBase; }

  /// Snapshot traversal. Only legal between kernels (run_kernel is
  /// synchronous, so there is no mid-kernel snapshot point): the
  /// scheduler heap is empty then and is simply re-sized on load. The
  /// event unit is recreated with the saved team size before loading.
  void serialize(snapshot::Archive& ar);

  /// Freshly-constructed state across all cluster blocks.
  void reset();

 private:
  void handle_envcall(PmcaCore& core);
  void release_barrier();

  ClusterConfig config_;
  mem::SocBus* bus_;
  Tcdm tcdm_;
  ClusterIcache icache_;
  std::unique_ptr<EventUnit> event_unit_;
  ClusterDma dma_;
  std::vector<std::unique_ptr<PmcaCore>> cores_;
  CoreScheduler sched_;  // runnable cores ordered by (cycle, core_id)
  std::vector<bool> at_barrier_;
  u32 team_size_ = 0;
  trace::TrackHandle trace_track_;  // event-unit lane (dispatch markers)
};

}  // namespace hulkv::cluster
