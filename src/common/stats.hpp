// Named performance counters.
//
// Every hardware block in the simulator (caches, LLC, HyperRAM controller,
// cores, DMAs) owns a StatGroup and increments counters as it models
// activity. The benches read these counters to regenerate the paper's
// tables and figures; the power model reads them to compute per-block
// activity factors.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hulkv::snapshot {
class Archive;
}  // namespace hulkv::snapshot

namespace hulkv {

/// A set of named 64-bit counters belonging to one simulated block.
class StatGroup {
 public:
  explicit StatGroup(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Add `delta` to counter `key` (created at zero on first use).
  void add(const std::string& key, u64 delta) { counters_[key] += delta; }

  void increment(const std::string& key) { add(key, 1); }

  /// Current value (zero if never touched).
  u64 get(const std::string& key) const {
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second;
  }

  void set(const std::string& key, u64 value) { counters_[key] = value; }

  /// Interned counter handle: a stable reference to the slot for `key`,
  /// created at zero on first use. Hot paths resolve the name once (at
  /// block construction) and bump the reference afterwards, skipping the
  /// per-event map lookup the string API pays. References stay valid for
  /// the lifetime of the StatGroup (std::map nodes never move, and
  /// reset() zeroes values instead of erasing them).
  u64& counter(const std::string& key) { return counters_[key]; }

  /// Zero every counter. Interned handles stay valid.
  void reset() {
    for (auto& entry : counters_) entry.second = 0;
  }

  /// Stable (sorted-by-name) view of all counters, for reports.
  const std::map<std::string, u64>& counters() const { return counters_; }

  /// Render as "name.key = value" lines.
  std::string to_string() const;

  /// Snapshot traversal. Only non-zero counters are saved/hashed, so a
  /// reset group digests equal to a freshly constructed one (lazily
  /// interned zero slots never perturb the digest). On load every
  /// existing counter is zeroed first, then the saved values applied —
  /// interned handles stay valid (map nodes never move).
  void serialize(snapshot::Archive& ar);

 private:
  std::string name_;
  std::map<std::string, u64> counters_;
};

}  // namespace hulkv
