// Offload-runtime tests: hulk_malloc/arenas, kernel registration, lazy
// code load (the Fig. 6 overhead mechanism), mailbox handshake, OpenMP
// facade, and host-syscall bridging.
#include <gtest/gtest.h>

#include "core/soc.hpp"
#include "isa/assembler.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/kernel.hpp"
#include "runtime/offload.hpp"
#include "runtime/omp.hpp"

namespace hulkv::runtime {
namespace {

using isa::Assembler;
using isa::Op;
using namespace isa::reg;

core::SocConfig fast_config() {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  return cfg;
}

/// Minimal cluster kernel: every core writes hartid+arg[0] to
/// tcdm[0x400+4*hart], then exits.
std::vector<u32> stamp_kernel() {
  Assembler a(0, false);
  a.lw(s1, 0, a0);  // args[0]
  a.ri(Op::kCsrrs, t0, 0, isa::csr::kMhartid);
  a.add(t1, t0, s1);
  a.slli(t2, t0, 2);
  a.li(t3, mem::map::kTcdmBase + 0x400);
  a.add(t2, t2, t3);
  a.sw(t1, 0, t2);
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  return a.assemble();
}

TEST(Arena, AlignmentAndExhaustion) {
  Arena arena(0x1000, 256);
  EXPECT_EQ(arena.alloc(10, 8), 0x1000u);
  EXPECT_EQ(arena.alloc(1, 64), 0x1040u);
  EXPECT_EQ(arena.used(), 0x41u);
  EXPECT_EQ(arena.available(), 256u - 0x41u);
  EXPECT_THROW(arena.alloc(1000), SimError);
  arena.reset();
  EXPECT_EQ(arena.alloc(10, 8), 0x1000u);
}

TEST(Arena, RejectsBadArguments) {
  Arena arena(0, 128);
  EXPECT_THROW(arena.alloc(0), SimError);
  EXPECT_THROW(arena.alloc(8, 3), SimError);  // non-pow2 alignment
}

TEST(SharedRegion, HulkMallocIsContiguousAndAligned) {
  SharedRegion shared(core::layout::kSharedBase, core::layout::kSharedSize);
  const Addr a = shared.hulk_malloc(100);
  const Addr b = shared.hulk_malloc(100);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  // The region is 32-bit addressable for the PMCA.
  EXPECT_LE(b + 100, 0x1'0000'0000ull);
}

TEST(Offload, RunsKernelAndReturnsTiming) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  const auto handle = runtime.register_kernel("stamp", stamp_kernel());
  const u32 arg = 1000;
  const auto result = runtime.offload(handle, std::array<u32, 1>{arg});
  EXPECT_TRUE(result.total > 0);
  EXPECT_GT(result.code_load, 0u);  // first offload pays the lazy load
  EXPECT_GT(result.kernel, 0u);
  EXPECT_EQ(result.total,
            result.code_load + result.kernel + result.handshake);
  for (u32 c = 0; c < 8; ++c) {
    u32 v = 0;
    soc.read_mem(mem::map::kTcdmBase + 0x400 + 4 * c, &v, 4);
    EXPECT_EQ(v, 1000 + c);
  }
}

TEST(Offload, LazyLoadPaidOnceThenAmortised) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  const auto handle = runtime.register_kernel("stamp", stamp_kernel());
  const auto first = runtime.offload(handle, std::array<u32, 1>{1});
  const auto second = runtime.offload(handle, std::array<u32, 1>{2});
  EXPECT_GT(first.code_load, 0u);
  EXPECT_EQ(second.code_load, 0u);
  EXPECT_LT(second.total, first.total);
  // Eviction brings the cost back (models re-offload after cold start).
  runtime.evict_all();
  const auto third = runtime.offload(handle, std::array<u32, 1>{3});
  EXPECT_GT(third.code_load, 0u);
}

TEST(Offload, PreloadRemovesLazyCost) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  const auto handle = runtime.register_kernel("stamp", stamp_kernel());
  runtime.preload(handle);
  const auto result = runtime.offload(handle, std::array<u32, 1>{1});
  EXPECT_EQ(result.code_load, 0u);
}

TEST(Offload, LazyLoadScalesWithCodeSize) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  Assembler big(0, false);
  for (int i = 0; i < 2000; ++i) big.nop();
  big.li(a7, cluster::envcall::kExit);
  big.ecall();
  const auto small_h = runtime.register_kernel("small", stamp_kernel());
  const auto big_h = runtime.register_kernel("big", big.assemble());
  const auto rs = runtime.offload(small_h, std::array<u32, 1>{0});
  const auto rb = runtime.offload(big_h, {});
  EXPECT_GT(rb.code_load, 10 * rs.code_load);
}

TEST(Offload, HostClockAdvancesAcrossOffload) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  const auto handle = runtime.register_kernel("stamp", stamp_kernel());
  const Cycles before = soc.host().now();
  const auto result = runtime.offload(handle, std::array<u32, 1>{1});
  EXPECT_EQ(soc.host().now(), before + result.total);
}

TEST(Offload, ArgumentBlockOverflowRejected) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  const auto handle = runtime.register_kernel("stamp", stamp_kernel());
  std::vector<u32> too_many(100, 0);
  EXPECT_THROW(runtime.offload(handle, too_many), SimError);
}

TEST(Offload, BadHandleRejected) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  EXPECT_THROW(runtime.offload(KernelHandle{}, {}), SimError);
}

TEST(Omp, TargetRegionLaunches) {
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  omp::TargetRegion region(&runtime, "stamp", stamp_kernel());
  const auto result = region({u32{500}});
  EXPECT_GT(result.kernel, 0u);
  u32 v = 0;
  soc.read_mem(mem::map::kTcdmBase + 0x400 + 4 * 3, &v, 4);
  EXPECT_EQ(v, 503u);
  const Addr buf = region.target_alloc(256);
  EXPECT_GE(buf, core::layout::kSharedBase);
}

TEST(Syscalls, GuestProgramOffloadsViaEcall) {
  // Full stack: a host *program* (running on the CVA6 ISS) performs the
  // offload through the syscall bridge, like a Linux user process
  // calling into the PMCA driver.
  core::HulkVSoc soc(fast_config());
  OffloadRuntime runtime(&soc);
  runtime.install_host_syscalls();
  const auto handle = runtime.register_kernel("stamp", stamp_kernel());

  Assembler a(core::layout::kHostCodeBase, true);
  // hulk_malloc(64) -> a0 (just exercises the malloc syscall).
  a.li(a0, 64);
  a.li(a7, OffloadRuntime::kSyscallOffload + 1);
  a.ecall();
  a.mv(s0, a0);
  // Store the arg array (one word: 7000) on the stack.
  a.li(t0, 7000);
  a.sw(t0, -16, sp);
  a.addi(a1, sp, -16);
  a.li(a0, handle.index);
  a.li(a2, 1);
  a.li(a7, OffloadRuntime::kSyscallOffload);
  a.ecall();
  a.mv(a0, s0);  // exit code = malloc'd address (sanity)
  a.li(a7, 93);
  a.ecall();

  const auto run = kernels::run_host_program(soc, a.assemble(), {});
  EXPECT_GE(run.exit_code, core::layout::kSharedBase);
  u32 v = 0;
  soc.read_mem(mem::map::kTcdmBase + 0x400, &v, 4);
  EXPECT_EQ(v, 7000u);
}

TEST(Mailbox, FifoOrderAndIrq) {
  bool raised = false;
  core::Mailbox mailbox([&] { raised = true; });
  mailbox.post_to_cluster(1);
  mailbox.post_to_cluster(2);
  EXPECT_EQ(mailbox.pop_cluster(), 1u);
  EXPECT_EQ(mailbox.pop_cluster(), 2u);
  EXPECT_FALSE(raised);
  mailbox.post_to_host(9);
  EXPECT_TRUE(raised);
  EXPECT_EQ(mailbox.mmio_read(core::Mailbox::kStatus, 4), 2u);
  EXPECT_EQ(mailbox.mmio_read(core::Mailbox::kC2hRead, 4), 9u);
  EXPECT_THROW(mailbox.pop_host(), SimError);
}

TEST(Iopmp, RegionSemantics) {
  core::Iopmp iopmp;
  iopmp.add_region({0x1000, 0x100, true, false});  // read-only window
  EXPECT_TRUE(iopmp.check(0x1000, 4, false));
  EXPECT_FALSE(iopmp.check(0x1000, 4, true));
  EXPECT_FALSE(iopmp.check(0x10FC, 8, false));  // crosses the window end
  EXPECT_FALSE(iopmp.check(0x2000, 4, false));
  iopmp.set_enforcing(false);
  EXPECT_TRUE(iopmp.check(0x2000, 4, true));
}

}  // namespace
}  // namespace hulkv::runtime
