// IoT CPU-centric benchmarks (paper sections VI-B/C, Figs. 7-9).
//
// The paper evaluates the memory hierarchy on "five IoT CPU-centric
// benchmarks" it does not name, a synthetic cache-stress benchmark it
// describes precisely, and Dhrystone. Our five (DESIGN.md section 1)
// span the memory-behaviour axis the figures explore:
//
//   crc32      - byte-stream + table lookups (streaming reads)
//   fir        - dense compute over a sliding window (host_fir_i32)
//   sort       - shell sort (strided, data-dependent accesses)
//   histogram  - streaming reads + scattered read-modify-writes
//   strsearch  - text scan with short inner loops (branchy)
//
// All run on the CVA6 ISS against the full memory hierarchy, so their
// L1/LLC/DRAM behaviour is real, not synthetic.
#pragma once

#include "kernels/kernel.hpp"

namespace hulkv::kernels {

/// CRC-32 over `n` bytes. Args: a0=data, a1=crc table (256 u32),
/// a2=address for the resulting u32.
KernelProgram host_crc32(u32 n);

/// Shell sort of `n` int32 (same gap sequence as golden::shell_sort).
/// Args: a0=data.
KernelProgram host_shell_sort(u32 n);

/// 256-bin byte histogram over `n` bytes (bins zeroed by the program).
/// Args: a0=data, a1=bins (256 u32).
KernelProgram host_histogram(u32 n);

/// Count occurrences of an `m`-byte needle in an `n`-byte haystack.
/// Args: a0=haystack, a1=needle, a2=address for the resulting u32.
KernelProgram host_strsearch(u32 n, u32 m);

/// Dhrystone-style integer mix: string copy + compare + arithmetic +
/// calls over small buffers, `iters` iterations. Args: a0=buf1, a1=buf2
/// (>= 64 B each).
KernelProgram host_dhrystone_mix(u32 iters);

/// Fig. 7 synthetic cache-stress benchmark: `rounds` rounds of `count`
/// word reads with byte stride `stride` over a `count*stride`-byte
/// buffer. The footprint (count*stride) sweeps the access stream across
/// the L1 -> LLC -> DRAM capacity boundaries, producing a controllable
/// L1 miss ratio exactly as described in section VI-B. Args: a0=buffer.
KernelProgram host_stride_reads(u32 stride, u32 count, u32 rounds);

/// Fig. 7 companion with a *dialled* L1 miss ratio: of every 16 reads,
/// `miss_slots` walk a large thrashing window (one new cache line each,
/// always an L1 miss) and the rest hit a resident 2 kB window — the
/// paper's "reads can either be in the 0th way, causing either a miss or
/// a hit, or in a different cache way and hit". Both paths execute the
/// same instruction count, so timing differences are purely the memory
/// system's. `footprint` (power of two) sizes the thrash window.
/// Args: a0=resident 4 kB buffer, a1=thrash buffer.
KernelProgram host_mixed_reads(u32 miss_slots, u32 footprint, u32 count,
                               u32 rounds);

/// Pointer chase: `count` dependent loads through a pre-built cycle of
/// pointers (every load's address comes from the previous load), the
/// canonical measurement of load-to-use latency of a memory level.
/// The caller must have written the pointer ring (u64 absolute addresses)
/// beforehand. Args: a0 = address of the first pointer.
KernelProgram host_pointer_chase(u32 count);

}  // namespace hulkv::kernels
