// Entry point of the guest-program static analyzer.
//
// `analyze_program` decodes an assembled image, builds its CFG
// (cfg.hpp) and runs a forward abstract-interpretation pass over it on
// the interval domain (domain.hpp): register definedness (use before
// def, dead writes), value-range propagation for materialised and
// derived addresses (with widening at loop back edges), and static
// memory checks of the resulting address ranges against the SoC memory
// map and the IOPMP grant windows. Alongside the diagnostic report it
// exports a FactsTable (facts.hpp) of proven per-instruction, per-block
// and per-function properties, which the load paths attach to the
// executing core's decode cache. The load paths
// (OffloadRuntime::register_kernel, kernels::run_host_program) call it
// before any instruction executes and reject images whose report
// contains errors under the configured policy.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/diag.hpp"
#include "analysis/domain.hpp"
#include "analysis/facts.hpp"
#include "core/iopmp.hpp"
#include "mem/interconnect.hpp"

namespace hulkv::analysis {

struct Options {
  /// Address the image is analyzed at. Cluster kernels are assembled
  /// position-independent at 0; host programs at their load address.
  Addr base = 0;

  IsaProfile profile = IsaProfile::kClusterRv32;

  /// Position-independent image: the load address is not the analysis
  /// base, so auipc-derived values are treated as unknown instead of
  /// being folded into (bogus) absolute addresses.
  bool pic = true;

  /// When set, statically-known cluster accesses outside the TCDM are
  /// checked against these grant windows (kIopmpDenied).
  const core::Iopmp* iopmp = nullptr;

  /// TCDM size used for the memory-map check (the SoC's configured
  /// cluster may differ from the default map constant).
  u64 tcdm_bytes = mem::map::kTcdmSize;

  /// Bitmask of register slots (x0..x31 = bits 0..31, f0..f31 = bits
  /// 32..63) holding meaningful values at entry. 0 selects the
  /// profile's convention via default_entry_defined().
  u64 entry_defined = 0;

  /// Statically-known entry values of integer registers, from the load
  /// path's calling convention (e.g. the offload runtime always passes
  /// the TCDM argument-block address in a0, and the cluster stacks live
  /// in a fixed TCDM window). Registers not listed start at top.
  std::vector<std::pair<u8, Interval>> entry_values;

  Policy policy = Policy::standard();
};

/// Entry convention: the cluster runtime passes the argument block in
/// a0 and a valid sp; the host loader additionally fills a1..a5.
u64 default_entry_defined(IsaProfile profile);

/// Bitmask helper for Options::entry_defined.
constexpr u64 reg_mask(std::initializer_list<u8> slots) {
  u64 mask = 1;  // x0 is always defined
  for (const u8 slot : slots) mask |= u64{1} << slot;
  return mask;
}

/// Diagnostics plus the proven facts of one analyzed image.
struct Analysis {
  Report report;
  /// Never null after analyze_program (empty tables for empty images).
  std::shared_ptr<const FactsTable> facts;
};

/// Run every pass over the image: the diagnostic report plus the
/// BlockFacts/function-summary table the simulators consume.
Analysis analyze_program(std::span<const u32> words, const Options& options);

/// Diagnostics only (the facts table is discarded).
Report analyze(std::span<const u32> words, const Options& options);

}  // namespace hulkv::analysis
