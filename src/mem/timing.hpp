// Timing interface implemented by every downstream memory target (DRAM
// models, LLC, caches).
//
// The simulator separates *function* from *time*: functional data lives in
// backing stores and is moved immediately, while timing models compute when
// an access would complete on the modelled hardware. A timing model may
// keep internal occupancy state ("device busy until cycle X"), which is how
// bandwidth saturation and compute/DMA overlap emerge naturally: a request
// arriving at `now` starts no earlier than the device is free.
#pragma once

#include "common/types.hpp"
#include "snapshot/archive.hpp"

namespace hulkv::mem {

class MemTiming {
 public:
  virtual ~MemTiming() = default;

  /// Model one access of `bytes` bytes at `addr` issued at cycle `now`.
  /// Returns the cycle at which the access completes (data available for
  /// reads, write accepted for writes). Must be monotone in `now`.
  virtual Cycles access(Cycles now, Addr addr, u32 bytes, bool is_write) = 0;
};

/// A fixed-latency, infinite-bandwidth timing model (SRAM scratchpads,
/// MMIO registers reached over the AXI crossbar).
class FixedLatency final : public MemTiming {
 public:
  explicit FixedLatency(Cycles latency) : latency_(latency) {}

  Cycles access(Cycles now, Addr, u32, bool) override {
    return now + latency_;
  }

 private:
  Cycles latency_;
};

/// Single-ported SRAM timing: fixed access latency plus a data path of
/// `bytes_per_cycle`; concurrent masters serialise on the port (L2SPM,
/// boot ROM). Latency pipelines; only the data beats occupy the port.
class SramTiming final : public MemTiming {
 public:
  SramTiming(Cycles latency, u32 bytes_per_cycle)
      : latency_(latency), bytes_per_cycle_(bytes_per_cycle) {}

  Cycles access(Cycles now, Addr, u32 bytes, bool) override {
    const Cycles start = now > busy_until_ ? now : busy_until_;
    const Cycles beats =
        (bytes + bytes_per_cycle_ - 1) / bytes_per_cycle_;
    busy_until_ = start + beats;
    return start + latency_ + beats;
  }

  /// Snapshot traversal (port occupancy is the only state).
  void serialize(snapshot::Archive& ar) { ar.pod(busy_until_); }

  /// Back to an idle port (freshly-constructed state).
  void reset() { busy_until_ = 0; }

 private:
  Cycles latency_;
  u32 bytes_per_cycle_;
  Cycles busy_until_ = 0;
};

}  // namespace hulkv::mem
