#include "cluster/event_unit.hpp"

#include "snapshot/archive.hpp"

#include <algorithm>

namespace hulkv::cluster {

EventUnit::EventUnit(u32 num_cores, Cycles wakeup_latency)
    : num_cores_(num_cores),
      wakeup_latency_(wakeup_latency),
      arrived_(num_cores, false),
      stats_("event_unit") {
  HULKV_CHECK(num_cores >= 1, "event unit needs cores");
}

bool EventUnit::arrive(u32 core_id, Cycles now) {
  HULKV_CHECK(core_id < num_cores_, "bad core id at barrier");
  HULKV_CHECK(!arrived_[core_id], "core arrived at the barrier twice");
  arrived_[core_id] = true;
  if (arrived_count_ == 0) first_arrival_ = now;
  else first_arrival_ = std::min(first_arrival_, now);
  ++arrived_count_;
  max_arrival_ = std::max(max_arrival_, now);
  return arrived_count_ == num_cores_;
}

Cycles EventUnit::release() {
  HULKV_CHECK(arrived_count_ == num_cores_, "barrier released early");
  stats_.increment("barriers");
  const Cycles wake = max_arrival_ + wakeup_latency_;
  if (trace::enabled()) {
    // Span from the first arrival (cores idling) to the wake-up; the
    // arg carries the arrival skew for imbalance analysis.
    auto& sink = trace::sink();
    sink.complete(sink.resolve(trace_track_, stats_.name()),
                  trace::Ev::kBarrier, first_arrival_, wake, num_cores_,
                  max_arrival_ - first_arrival_);
  }
  arrived_count_ = 0;
  max_arrival_ = 0;
  first_arrival_ = 0;
  std::fill(arrived_.begin(), arrived_.end(), false);
  return wake;
}

void EventUnit::serialize(snapshot::Archive& ar) {
  ar.pod(wakeup_latency_);
  ar.pod(arrived_count_);
  ar.pod(max_arrival_);
  ar.pod(first_arrival_);
  ar.bool_vec(arrived_);
  stats_.serialize(ar);
}

}  // namespace hulkv::cluster
