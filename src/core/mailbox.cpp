#include "core/mailbox.hpp"

namespace hulkv::core {

void Mailbox::post_to_host(u32 word) {
  c2h_.push_back(word);
  if (irq_raise_) irq_raise_();
}

u32 Mailbox::pop_host() {
  HULKV_CHECK(!c2h_.empty(), "mailbox C2H pop on empty FIFO");
  const u32 word = c2h_.front();
  c2h_.pop_front();
  return word;
}

u32 Mailbox::pop_cluster() {
  HULKV_CHECK(!h2c_.empty(), "mailbox H2C pop on empty FIFO");
  const u32 word = h2c_.front();
  h2c_.pop_front();
  return word;
}

u64 Mailbox::mmio_read(Addr offset, u32 size) {
  (void)size;
  switch (offset) {
    case kH2cRead:
      return cluster_message_pending() ? pop_cluster() : 0;
    case kC2hRead:
      return host_message_pending() ? pop_host() : 0;
    case kStatus:
      return (cluster_message_pending() ? 1u : 0u) |
             (host_message_pending() ? 2u : 0u);
    default:
      return 0;
  }
}

void Mailbox::mmio_write(Addr offset, u64 value, u32 size) {
  (void)size;
  switch (offset) {
    case kH2cWrite:
      post_to_cluster(static_cast<u32>(value));
      break;
    case kC2hWrite:
      post_to_host(static_cast<u32>(value));
      break;
    default:
      break;
  }
}

void Mailbox::serialize(snapshot::Archive& ar) {
  const auto fifo = [&ar](std::deque<u32>& q) {
    u64 count = q.size();
    ar.pod(count);
    if (ar.loading()) {
      q.clear();
      for (u64 i = 0; i < count; ++i) {
        u32 word = 0;
        ar.pod(word);
        q.push_back(word);
      }
      return;
    }
    for (u32 word : q) ar.pod(word);
  };
  fifo(h2c_);
  fifo(c2h_);
}

}  // namespace hulkv::core
