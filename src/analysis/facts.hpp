// Block-facts table: the analyzer's proven per-instruction and
// per-block properties, exported with the assembled image and consumed
// by the simulators (DESIGN.md §13).
//
// The analyzer (analyzer.cpp) fills one FactsTable per analyzed image:
// per-instruction fact flags (may-access-memory, proven-TCDM-local,
// proven-core-local ecall, ...), per-basic-block summaries (min cycles,
// purity, memory footprint, run-ahead eligibility) and per-function
// interprocedural summaries (callgraph.hpp). The load paths attach the
// table to the executing core's isa::BlockCache through a FactProvider
// closure: at block-translate time the cache asks the table for the
// decoded range's facts, and
//
//  * counts blocks proven run-ahead eligible (simperf reports them),
//  * clears shared_mask bits of ecalls proven core-local, widening the
//    PR 3 run-ahead without changing timing (the only services ever
//    proven core-local — cluster kExit/kCoreCount — touch no shared
//    timing model; see DESIGN.md §13 for the argument).
//
// Facts address decoded blocks by *image offset*, so the same table
// serves a kernel loaded at any L2 address. query_range() re-verifies
// the decoded words against the analyzed image, which makes stale
// facts (self-modifying code) degrade to "unproven" instead of wrong.
#pragma once

#include <memory>
#include <vector>

#include "analysis/callgraph.hpp"
#include "analysis/footprint.hpp"
#include "isa/block_cache.hpp"

namespace hulkv::analysis {

/// Per-instruction fact flags.
enum InstrFact : u8 {
  /// May access data memory (loads/stores, incl. the fused MAC&load ops).
  kFactMemAccess = 1u << 0,
  /// Every possible effective address lies inside the TCDM window.
  kFactTcdmLocal = 1u << 1,
  /// Is an environment call.
  kFactEcall = 1u << 2,
  /// Ecall whose statically-proven service id touches only core-local
  /// state (cluster kExit/kCoreCount, host exit): safe to run ahead.
  kFactCoreLocalEcall = 1u << 3,
  /// Must execute in global time order and cannot be widened: ebreak,
  /// wfi, illegal, and ecalls not proven core-local.
  kFactOrdered = 1u << 4,
};

/// Summary of one analysis basic block (CFG block granularity; decoded
/// blocks may span several — the per-instruction flags bridge the gap).
struct BlockFacts {
  u32 first = 0;       // instruction index range [first, last]
  u32 last = 0;
  Addr start = 0;      // byte range [start, end) at the analysis base
  Addr end = 0;
  /// Lower bound on execution cycles: every instruction retires in at
  /// least one cycle on both cores, independent of configured latencies.
  u32 min_cycles = 0;
  bool reachable = false;
  bool may_access_memory = false;
  bool may_ecall = false;
  /// No memory access, no ecall/trap: result depends only on registers.
  bool pure = false;
  /// Every memory access proven inside the TCDM window.
  bool tcdm_local = false;
  /// Free of ordered instructions over the whole block: a run-ahead
  /// scheduler can execute it past its time horizon without parking.
  bool run_ahead_eligible = false;
  RangeSet footprint;
};

class FactsTable {
 public:
  Addr base = 0;              // analysis base address of the image
  std::vector<u32> words;     // the analyzed image (SMC verification)
  std::vector<u8> instr_facts;  // InstrFact flags per instruction
  std::vector<BlockFacts> blocks;
  std::vector<FuncSummary> functions;

  u64 bytes() const { return words.size() * 4; }
  bool contains(Addr addr) const {
    return addr >= base && addr < base + bytes();
  }

  // ---- summary counts over reachable blocks (report/CI currency) ----
  u32 reachable_blocks() const;
  u32 pure_blocks() const;
  u32 memory_free_blocks() const;   // !may_access_memory
  u32 tcdm_local_blocks() const;    // has accesses, all proven TCDM-local
  u32 eligible_blocks() const;      // run_ahead_eligible
  u32 core_local_ecalls() const;    // instructions with kFactCoreLocalEcall

  /// Facts for the decoded range [start, start + 4*count) at the
  /// analysis base. Verifies every decoded word against the analyzed
  /// image and conjoins the per-instruction flags; returns false (no
  /// facts) on any mismatch or out-of-image range.
  bool query_range(Addr start, const isa::Instr* instrs, size_t count,
                   isa::RunAheadFacts* out) const;
};

/// Table registry for load paths that place several images in one
/// address space (the offload runtime's L2 kernel images). Attached to
/// a core's BlockCache once; images register/clear as they are loaded
/// and evicted.
class FactsRegistry {
 public:
  /// Register `table` as loaded at `load_base`, displacing any entry
  /// overlapping the new image's range.
  void register_image(Addr load_base,
                      std::shared_ptr<const FactsTable> table);
  void clear() { entries_.clear(); }

  /// The table covering `pc`, or nullptr. `*image_base` gets the load
  /// address of the covering image.
  const FactsTable* find(Addr pc, Addr* image_base) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    Addr load_base = 0;
    std::shared_ptr<const FactsTable> table;
  };
  std::vector<Entry> entries_;
};

/// Install a FactProvider on `cache` serving `table` for an image
/// loaded at `load_base` (single-image loaders: run_host_program).
/// The closure keeps the table alive.
void attach_facts(isa::BlockCache& cache, Addr load_base,
                  std::shared_ptr<const FactsTable> table);

/// Install a FactProvider on `cache` consulting `registry` (multi-image
/// loaders: the offload runtime). The closure keeps the registry alive;
/// images registered later are visible without re-attaching.
void attach_registry(isa::BlockCache& cache,
                     std::shared_ptr<const FactsRegistry> registry);

}  // namespace hulkv::analysis
