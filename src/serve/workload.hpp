// The workload catalogue served by the hulkv::serve daemon: the five
// Fig. 8 IoT CPU-centric benchmarks at service-sized footprints (a few
// ms per point instead of seconds, so a request is an RPC rather than
// a batch job). Workload ids are wire-protocol values — the table is
// append-only, and every program is built from fixed compile-time
// sizes and fixed RNG seeds so its digest (cache-key component) is a
// pure function of the id.
#pragma once

#include <vector>

#include "core/soc.hpp"
#include "kernels/kernel.hpp"
#include "serve/protocol.hpp"

namespace hulkv::serve {

/// Number of workloads in the catalogue (valid ids are [0, count)).
u8 workload_count();

const char* workload_name(u8 id);

/// Throw SimError on an out-of-range workload id.
void check_workload(u8 id);

/// Throw SimError on any out-of-range field of a point (workload id,
/// memory kind, llc flag). The server maps the throw to kBadRequest.
void check_point(const PointParams& point);

/// SoC configuration of a point (memory kind + LLC enable).
core::SocConfig point_config(const PointParams& point);

/// A workload instantiated on a SoC: input data written to shared
/// memory, program built, argument registers chosen.
struct WorkloadSetup {
  kernels::KernelProgram program;
  std::vector<u64> args;
};

/// Write the workload's input data into `soc` and return its program
/// and arguments. Deterministic: fixed sizes, fixed seeds.
WorkloadSetup setup_workload(u8 id, core::HulkVSoc& soc);

/// Digest of the workload's program words (cache-key component).
/// Computed once per process and cached; pure function of the id.
u64 workload_digest(u8 id);

}  // namespace hulkv::serve
