#include "kernels/cluster_kernels.hpp"

#include <iterator>

#include "cluster/pmca_core.hpp"
#include "isa/assembler.hpp"

namespace hulkv::kernels {

using isa::Assembler;
using isa::Op;
using namespace isa::reg;

namespace {

/// Cluster code is position independent (PC-relative control flow only).
Assembler make_cluster_asm() { return Assembler(0, /*rv64=*/false); }

void env(Assembler& a, u64 function) {
  a.li(a7, static_cast<i64>(function));
  a.ecall();
}

void barrier(Assembler& a) { env(a, cluster::envcall::kBarrier); }

void hartid(Assembler& a, u8 rd) {
  a.ri(Op::kCsrrs, rd, 0, isa::csr::kMhartid);
}

/// Emit a core-0-only 1D DMA of `bytes_reg` bytes dst<-src.
/// Caller must be inside a core-0 guard; clobbers a0..a2, a7.
void dma_1d(Assembler& a, u8 dst_reg, u8 src_reg, u8 bytes_reg) {
  a.mv(a0, dst_reg);
  a.mv(a1, src_reg);
  a.mv(a2, bytes_reg);
  env(a, cluster::envcall::kDma1d);
}

void dma_wait(Assembler& a) { env(a, cluster::envcall::kDmaWait); }

void exit_kernel(Assembler& a) { env(a, cluster::envcall::kExit); }

/// Standard prologue: save the arg pointer to s0, load `nargs` argument
/// words into s1.. (s1 = args[0], ...), fetch hart id into t0 and the
/// core count into s11. Note the RISC-V ABI's s-registers are not
/// contiguous indices (s0/s1 = x8/x9, s2..s11 = x18..x27), hence the
/// explicit map.
void prologue(Assembler& a, u32 nargs) {
  static constexpr u8 kArgRegs[] = {s1, s2, s3, s4, s5, s6, s7, s8};
  HULKV_CHECK(nargs <= std::size(kArgRegs), "too many kernel arguments");
  a.mv(s0, a0);
  for (u32 i = 0; i < nargs; ++i) {
    a.lw(kArgRegs[i], static_cast<i32>(4 * i), s0);
  }
  env(a, cluster::envcall::kCoreCount);
  a.mv(s11, a0);
  hartid(a, t0);
}

}  // namespace

KernelProgram cluster_matmul_i8(u32 m, u32 n, u32 k) {
  HULKV_CHECK(k % 4 == 0, "cluster_matmul_i8 needs k % 4 == 0");
  HULKV_CHECK(n % 2 == 0, "cluster_matmul_i8 needs n % 2 == 0");
  Assembler a = make_cluster_asm();
  // s1=A_ext s2=BT_ext s3=C_ext s4=A_l1 s5=BT_l1 s6=C_l1
  prologue(a, 6);

  a.bnez(t0, "after_dma_in");
  a.li(t1, static_cast<i64>(m) * k);
  dma_1d(a, s4, s1, t1);
  a.li(t1, static_cast<i64>(n) * k);
  dma_1d(a, s5, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  // Hot-loop structure (the paper's DSP features at work): the j loop is
  // unrolled by two so each A word feeds two BT rows, the BT streams use
  // the MAC&Load instruction (memory operand + post-increment folded into
  // the dot-product-accumulate), and the k loop is a zero-overhead
  // hardware loop: 3 instructions per 8 MACs.
  a.li(s7, k / 4);                     // inner trip count (hoisted)
  a.li(s8, n);                         // columns (hoisted)
  a.li(s10, m);                        // rows (hoisted)
  a.li(a3, k);                         // BT row stride (hoisted)
  hartid(a, t0);                       // i = hart id
  // Stagger each core's starting column so the 8 cores do not walk the
  // shared BT rows in lockstep (TCDM bank-conflict avoidance):
  // j0 = hart * ((n / ncores) & ~1), wrapping at n.
  a.rr(Op::kDivu, t6, s8, s11);
  a.andi(t6, t6, -2);
  a.mul(t6, t6, t0);
  a.mul(s1, t6, a3);
  a.add(s1, s1, s5);                   // s1 = &BT[j0][0] (per-core start)
  a.slli(s2, t6, 2);                   // s2 = j0 * 4 (C column offset)
  a.mul(a6, s8, a3);
  a.add(a6, a6, s5);                   // a6 = BT end sentinel
  a.label("loop_i");
  a.bge(t0, s10, "rows_done");
  a.mul(a1, t0, a3);
  a.add(a1, a1, s4);                   // &A_l1[i*k]
  a.slli(t1, t0, 2);
  a.mul(t1, t1, s8);
  a.add(t1, t1, s6);                   // t1 = &C_l1[i*n] (row base)
  a.add(t3, t1, s2);                   // C pointer at the staggered j0
  a.mv(t4, s1);                        // BT row j (staggered start)
  a.li(t2, 0);                         // pair counter
  a.label("loop_j");
  a.add(a5, t4, a3);                   // BT row j+1
  a.li(t5, 0);                         // acc0
  a.li(s9, 0);                         // acc1
  a.mv(a2, a1);                        // pa
  a.lp_setup(0, s7, "dot_end");
  a.load(Op::kPLwPost, a4, 4, a2);     // 4 int8 of the A row
  a.rr(Op::kPvSdotspBMem, t5, t4, a4);   // acc0 += dot(mem[t4]...), t4+=4
  a.rr(Op::kPvSdotspBMem, s9, a5, a4);   // acc1 += dot(mem[a5]...), a5+=4
  a.label("dot_end");
  a.store(Op::kPSwPost, t5, 4, t3);    // C[i][j]
  a.store(Op::kPSwPost, s9, 4, t3);    // C[i][j+1]
  a.mv(t4, a5);                        // j += 2 rows of BT
  a.addi(t2, t2, 2);
  a.blt(t4, a6, "no_wrap");            // wrap j to column 0
  a.mv(t4, s5);
  a.mv(t3, t1);
  a.label("no_wrap");
  a.blt(t2, s8, "loop_j");
  a.add(t0, t0, s11);                  // i += ncores
  a.j("loop_i");
  a.label("rows_done");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, static_cast<i64>(m) * n * 4);
  dma_1d(a, s3, s6, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("matmul", Precision::kInt8, a, 2ull * m * n * k);
}

KernelProgram cluster_matmul_i32(u32 m, u32 n, u32 k) {
  Assembler a = make_cluster_asm();
  // s1=A_ext s2=BT_ext s3=C_ext s4=A_l1 s5=BT_l1 s6=C_l1 (all int32)
  prologue(a, 6);

  a.bnez(t0, "after_dma_in");
  a.li(t1, static_cast<i64>(m) * k * 4);
  dma_1d(a, s4, s1, t1);
  a.li(t1, static_cast<i64>(n) * k * 4);
  dma_1d(a, s5, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  // Scalar inner loop (no SIMD, no MAC&Load): p.lw + p.lw + p.mac per
  // MAC — the baseline the reduced-precision kernels are measured
  // against.
  a.li(s7, k);                       // inner trip count
  a.li(s8, n);
  a.li(s10, m);
  a.li(a3, static_cast<i64>(k) * 4); // BT row stride (bytes)
  hartid(a, t0);
  a.label("loop_i");
  a.bge(t0, s10, "rows_done");
  a.mul(a1, t0, a3);
  a.add(a1, a1, s4);                 // &A_l1[i*k]
  a.slli(t1, t0, 2);
  a.mul(t1, t1, s8);
  a.add(t3, t1, s6);                 // &C_l1[i*n]
  a.mv(t4, s5);                      // BT walker
  a.li(t2, 0);
  a.label("loop_j");
  a.li(t5, 0);                       // acc
  a.mv(a2, a1);
  a.lp_setup(0, s7, "dot_end");
  a.load(Op::kPLwPost, a4, 4, a2);
  a.load(Op::kPLwPost, a5, 4, t4);
  a.rr(Op::kPMac, t5, a4, a5);
  a.label("dot_end");
  a.store(Op::kPSwPost, t5, 4, t3);
  a.addi(t2, t2, 1);
  a.blt(t2, s8, "loop_j");
  a.add(t0, t0, s11);
  a.j("loop_i");
  a.label("rows_done");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, static_cast<i64>(m) * n * 4);
  dma_1d(a, s3, s6, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("matmul", Precision::kInt32, a, 2ull * m * n * k);
}

KernelProgram cluster_axpy_f32(u32 n) {
  HULKV_CHECK(n % 8 == 0, "cluster_axpy_f32 needs n % 8 == 0");
  Assembler a = make_cluster_asm();
  // s1=x_ext s2=y_ext s3=alpha bits s4=x_l1 s5=y_l1 (fp32 buffers)
  prologue(a, 5);

  a.bnez(t0, "after_dma_in");
  a.li(t1, static_cast<i64>(n) * 4);
  dma_1d(a, s4, s1, t1);
  a.li(t1, static_cast<i64>(n) * 4);
  dma_1d(a, s5, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  a.ri(Op::kFmvWX, 0, s3, 0);  // f0 = alpha
  hartid(a, t0);
  a.li(t1, n);
  a.rr(Op::kDivu, t2, t1, s11);  // elements per core
  a.mul(t3, t0, t2);
  a.slli(t3, t3, 2);
  a.add(a1, s4, t3);
  a.add(a2, s5, t3);
  a.lp_setup(0, t2, "axpy_end");
  a.load(Op::kFlw, 1, 0, a1);
  a.load(Op::kFlw, 2, 0, a2);
  a.r4(Op::kFmaddS, 2, 0, 1, 2);  // y = alpha*x + y
  a.store(Op::kFsw, 2, 0, a2);
  a.addi(a1, a1, 4);
  a.addi(a2, a2, 4);
  a.label("axpy_end");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, static_cast<i64>(n) * 4);
  dma_1d(a, s2, s5, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("axpy", Precision::kFp32, a, 2ull * n);
}

KernelProgram cluster_matmul_f16(u32 m, u32 n, u32 k) {
  HULKV_CHECK(k % 2 == 0, "cluster_matmul_f16 needs k % 2 == 0");
  Assembler a = make_cluster_asm();
  prologue(a, 6);  // same block layout as matmul_i8 (fp16 buffers)

  a.bnez(t0, "after_dma_in");
  a.li(t1, static_cast<i64>(m) * k * 2);
  dma_1d(a, s4, s1, t1);
  a.li(t1, static_cast<i64>(n) * k * 2);
  dma_1d(a, s5, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  hartid(a, t0);
  a.label("loop_i");
  a.li(t6, m);
  a.bge(t0, t6, "rows_done");
  a.li(t6, static_cast<i64>(k) * 2);
  a.mul(a1, t0, t6);
  a.add(a1, a1, s4);  // &A_l1[i*k] (2 B/elem)
  a.li(t6, static_cast<i64>(n) * 4);
  a.mul(t3, t0, t6);
  a.add(t3, t3, s6);  // &C_l1[i*n] (fp32 out)
  a.mv(t4, s5);       // BT walker
  a.li(t2, 0);        // j
  a.label("loop_j");
  // f0 = 0.0f accumulator
  a.ri(Op::kFcvtSW, 0, zero, 0);
  a.mv(a2, a1);
  a.li(t6, k / 2);
  a.lp_setup(0, t6, "dot_end");
  a.load(Op::kFlw, 1, 0, a2);        // 2 fp16 of A
  a.load(Op::kFlw, 2, 0, t4);        // 2 fp16 of BT
  a.rr(Op::kVfdotpexSH, 0, 1, 2);    // f0 += a0*b0 + a1*b1
  a.addi(a2, a2, 4);
  a.addi(t4, t4, 4);
  a.label("dot_end");
  a.store(Op::kFsw, 0, 0, t3);
  a.addi(t3, t3, 4);
  a.addi(t2, t2, 1);
  a.li(t6, n);
  a.blt(t2, t6, "loop_j");
  a.add(t0, t0, s11);
  a.j("loop_i");
  a.label("rows_done");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, static_cast<i64>(m) * n * 4);
  dma_1d(a, s3, s6, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("matmul", Precision::kFp16, a, 2ull * m * n * k);
}

KernelProgram cluster_conv3x3_i8(u32 h, u32 w) {
  HULKV_CHECK(2 * w + 2 <= 2047, "image row too wide for the addressing");
  Assembler a = make_cluster_asm();
  // s1=img_ext s2=ker_ext s3=out_ext s4=img_l1 s5=ker_l1 s6=out_l1
  prologue(a, 6);

  a.bnez(t0, "after_dma_in");
  a.li(t1, static_cast<i64>(h) * w);
  dma_1d(a, s4, s1, t1);
  a.li(t1, 12);  // 9 coefficients, padded to words
  dma_1d(a, s5, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  // Hoist the 9 coefficients into s7..s10 + a3..a7? Registers are tight:
  // keep them in t registers is impossible (used); reload per row is
  // cheap enough: load into a2..a4 packed? Simplest faithful approach:
  // keep coefficients in registers s7, s8, s9, s10, a3, a4, a5, a6, t5.
  for (u32 i = 0; i < 4; ++i) {
    a.load(Op::kLb, static_cast<u8>(s7 + i), static_cast<i32>(i), s5);
  }
  a.load(Op::kLb, a3, 4, s5);
  a.load(Op::kLb, a4, 5, s5);
  a.load(Op::kLb, a5, 6, s5);
  a.load(Op::kLb, a6, 7, s5);
  a.load(Op::kLb, t5, 8, s5);

  hartid(a, t0);  // y = hart id
  a.label("loop_y");
  a.li(t6, h - 2);
  a.bge(t0, t6, "rows_done");
  // t1 = &img_l1[y*w], t3 = &out_l1[y*(w-2)*4]
  a.li(t6, w);
  a.mul(t1, t0, t6);
  a.add(t1, t1, s4);
  a.li(t6, static_cast<i64>(w - 2) * 4);
  a.mul(t3, t0, t6);
  a.add(t3, t3, s6);
  a.li(t2, 0);  // x
  a.label("loop_x");
  a.li(t4, 0);  // acc
  const u8 coeff[9] = {s7, s8, s9, s10, a3, a4, a5, a6, t5};
  for (u32 ky = 0; ky < 3; ++ky) {
    for (u32 kx = 0; kx < 3; ++kx) {
      a.load(Op::kLb, a1, static_cast<i32>(ky * w + kx), t1);
      a.rr(Op::kPMac, t4, a1, coeff[ky * 3 + kx]);
    }
  }
  a.store(Op::kPSwPost, t4, 4, t3);
  a.addi(t1, t1, 1);
  a.addi(t2, t2, 1);
  a.li(t6, w - 2);
  a.blt(t2, t6, "loop_x");
  a.add(t0, t0, s11);
  a.j("loop_y");
  a.label("rows_done");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, static_cast<i64>(h - 2) * (w - 2) * 4);
  dma_1d(a, s3, s6, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("conv3x3", Precision::kInt8, a,
                        18ull * (h - 2) * (w - 2));
}

KernelProgram cluster_fir_i8(u32 n, u32 taps) {
  HULKV_CHECK(taps % 4 == 0, "cluster_fir_i8 needs taps % 4 == 0");
  const u32 nout = n - taps + 1;
  Assembler a = make_cluster_asm();
  // s1=x_ext s2=h_ext s3=y_ext s4=x_l1 s5=h_l1 s6=y_l1
  prologue(a, 6);

  a.bnez(t0, "after_dma_in");
  a.li(t1, n);
  dma_1d(a, s4, s1, t1);
  a.li(t1, taps);
  dma_1d(a, s5, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  // Contiguous output chunk per core: chunk = ceil(nout / ncores).
  hartid(a, t0);
  a.li(t1, nout);
  a.add(t2, t1, s11);
  a.addi(t2, t2, -1);
  a.rr(Op::kDivu, t2, t2, s11);  // chunk
  a.mul(t3, t0, t2);             // start = hart * chunk
  a.add(t4, t3, t2);             // end = start + chunk
  a.li(t6, nout);
  a.blt(t4, t6, "end_clamped");
  a.mv(t4, t6);
  a.label("end_clamped");
  // y pointer: &y_l1[start*4]
  a.slli(t5, t3, 2);
  a.add(t5, t5, s6);
  a.li(s7, taps / 4);  // inner trip count (hoisted)
  a.label("loop_i");
  a.bge(t3, t4, "chunk_done");
  a.li(a1, 0);        // acc
  a.add(a2, s4, t3);  // &x_l1[i]
  a.mv(a3, s5);       // &h_l1[0]
  a.lp_setup(0, s7, "dot_end");
  a.load(Op::kPLwPost, a4, 4, a2);     // 4 int8 of the signal window
  a.rr(Op::kPvSdotspBMem, a1, a3, a4);  // MAC&Load on the tap stream
  a.label("dot_end");
  a.store(Op::kPSwPost, a1, 4, t5);
  a.addi(t3, t3, 1);
  a.j("loop_i");
  a.label("chunk_done");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, static_cast<i64>(nout) * 4);
  dma_1d(a, s3, s6, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("fir", Precision::kInt8, a, 2ull * taps * nout);
}

KernelProgram cluster_axpy_f16(u32 n) {
  HULKV_CHECK(n % 16 == 0, "cluster_axpy_f16 needs n % 16 == 0");
  Assembler a = make_cluster_asm();
  // s1=x_ext s2=y_ext s3=alpha-pair (by value) s4=x_l1 s5=y_l1
  prologue(a, 5);

  a.bnez(t0, "after_dma_in");
  a.li(t1, static_cast<i64>(n) * 2);
  dma_1d(a, s4, s1, t1);
  a.li(t1, static_cast<i64>(n) * 2);
  dma_1d(a, s5, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  a.ri(Op::kFmvWX, 0, s3, 0);  // f0 = packed alpha pair
  // words (fp16 pairs) per core, contiguous chunks.
  hartid(a, t0);
  a.li(t1, n / 2);             // total pairs
  a.rr(Op::kDivu, t2, t1, s11);  // pairs per core (n divisible)
  a.mul(t3, t0, t2);           // start pair
  a.slli(t3, t3, 2);           // byte offset
  a.add(a1, s4, t3);           // x ptr
  a.add(a2, s5, t3);           // y ptr
  a.lp_setup(0, t2, "axpy_end");
  a.load(Op::kFlw, 1, 0, a1);      // x pair
  a.load(Op::kFlw, 2, 0, a2);      // y pair
  a.rr(Op::kVfmacH, 2, 1, 0);      // y += x * alpha
  a.store(Op::kFsw, 2, 0, a2);
  a.addi(a1, a1, 4);
  a.addi(a2, a2, 4);
  a.label("axpy_end");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, static_cast<i64>(n) * 2);
  dma_1d(a, s2, s5, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("axpy", Precision::kFp16, a, 2ull * n);
}

KernelProgram cluster_relu_i8(u32 n) {
  HULKV_CHECK(n % 4 == 0, "cluster_relu_i8 needs n % 4 == 0");
  Assembler a = make_cluster_asm();
  // s1=x_ext s2=y_ext s3=x_l1 s4=y_l1
  prologue(a, 4);

  a.bnez(t0, "after_dma_in");
  a.li(t1, n);
  dma_1d(a, s3, s1, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  // Contiguous word chunks per core; pv.max.b against zero = 4 ReLUs
  // per cycle per core.
  hartid(a, t0);
  a.li(t1, n / 4);              // total words
  a.rr(Op::kDivu, t2, t1, s11);  // words per core (n multiple of 4*team)
  a.mul(t3, t0, t2);
  a.slli(t3, t3, 2);            // byte offset
  a.add(a1, s3, t3);
  a.add(a2, s4, t3);
  a.beqz(t2, "chunk_done");
  a.lp_setup(0, t2, "relu_end");
  a.load(Op::kPLwPost, a3, 4, a1);
  a.rr(Op::kPvMaxB, a3, a3, zero);
  a.store(Op::kPSwPost, a3, 4, a2);
  a.label("relu_end");
  a.label("chunk_done");
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_dma_out");
  a.li(t1, n);
  dma_1d(a, s2, s4, t1);
  dma_wait(a);
  a.label("after_dma_out");
  barrier(a);
  exit_kernel(a);
  return finish_program("relu", Precision::kInt8, a, n);
}

KernelProgram cluster_dotp_f16(u32 n) {
  HULKV_CHECK(n % 16 == 0, "cluster_dotp_f16 needs n % 16 == 0");
  Assembler a = make_cluster_asm();
  // s1=x_ext s2=y_ext s3=x_l1 s4=y_l1 s5=partials_l1 s6=result_l1
  prologue(a, 6);

  a.bnez(t0, "after_dma_in");
  a.li(t1, static_cast<i64>(n) * 2);
  dma_1d(a, s3, s1, t1);
  a.li(t1, static_cast<i64>(n) * 2);
  dma_1d(a, s4, s2, t1);
  dma_wait(a);
  a.label("after_dma_in");
  barrier(a);

  a.ri(Op::kFcvtSW, 0, zero, 0);  // f0 = fp32 partial
  hartid(a, t0);
  a.li(t1, n / 2);
  a.rr(Op::kDivu, t2, t1, s11);  // pairs per core
  a.mul(t3, t0, t2);
  a.slli(t3, t3, 2);
  a.add(a1, s3, t3);
  a.add(a2, s4, t3);
  a.lp_setup(0, t2, "dot_end");
  a.load(Op::kFlw, 1, 0, a1);
  a.load(Op::kFlw, 2, 0, a2);
  a.rr(Op::kVfdotpexSH, 0, 1, 2);
  a.addi(a1, a1, 4);
  a.addi(a2, a2, 4);
  a.label("dot_end");
  // partials[hart] = f0 (fp32 bits)
  a.ri(Op::kFmvXW, t4, 0, 0);
  a.slli(t5, t0, 2);
  a.add(t5, t5, s5);
  a.sw(t4, 0, t5);
  barrier(a);

  hartid(a, t0);
  a.bnez(t0, "after_reduce");
  // Core 0 sums the ncores partials sequentially in fp32.
  a.ri(Op::kFcvtSW, 0, zero, 0);
  a.mv(a1, s5);
  a.lp_setup(0, s11, "red_end");
  a.load(Op::kFlw, 1, 0, a1);
  a.rr(Op::kFaddS, 0, 0, 1);
  a.addi(a1, a1, 4);
  a.label("red_end");
  a.store(Op::kFsw, 0, 0, s6);
  a.label("after_reduce");
  barrier(a);
  exit_kernel(a);
  return finish_program("dotp", Precision::kFp16, a, 2ull * n);
}

}  // namespace hulkv::kernels
