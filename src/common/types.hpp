// Fundamental scalar types and strong aliases used across the HULK-V
// simulator. Keeping them in one header makes the units of every interface
// explicit: addresses are byte addresses in the SoC physical address space,
// and time is counted in cycles of the single simulation clock domain (see
// DESIGN.md section 4 for how cycles map onto the ASIC frequency domains).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hulkv {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Physical byte address in the SoC address space (64-bit, SV39-compatible).
using Addr = std::uint64_t;

/// Simulation time in cycles of the FPGA-style single clock domain.
using Cycles = std::uint64_t;

/// Error thrown on simulator invariant violations and bad configurations.
/// Tests rely on this being thrown (rather than aborting) so that invalid
/// uses of the public API are observable behaviour.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace hulkv

/// Invariant check used throughout the simulator. Unlike assert(), it is
/// active in all build types and throws hulkv::SimError so callers (and
/// tests) can observe misuse of the API as a defined behaviour.
#define HULKV_CHECK(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      throw ::hulkv::SimError(std::string("HULKV_CHECK failed: ") + msg + \
                              " (" #cond ") at " __FILE__ ":" +            \
                              std::to_string(__LINE__));                   \
    }                                                                      \
  } while (0)
