// RPC (Reduced Pin Count) DRAM timing model — the other IoT-DRAM family
// the paper cites next to HyperRAM (section I, [8]: Etron RPC DRAM):
// "HyperRAMs belong to the family of IoT memories, like RPC-DRAMs,
// providing relatively high-bandwidth, low-pin count, ease of
// integration, low power consumption...".
//
// RPC DRAM is a x16 DDR device with a serial command interface and a
// conventional DRAM core (banks, rows, activate/precharge). Compared to
// HyperRAM it has double the data-bus width and real bank-level row
// buffers, so sequential bursts that stay in an open row avoid the
// activation latency. This model extends the repo beyond the paper's
// evaluated configurations (an ablation, see bench/ablation_memsys.cpp):
//
//  * `num_banks` row buffers; a burst to an open row pays only the
//    command phase, a row miss pays precharge + activate;
//  * 16-bit DDR data: 4 bytes per bus clock;
//  * the bus clock is a divider of the SoC clock, like the HyperBUS;
//  * periodic refresh steals slots exactly like the HyperRAM model.
#pragma once

#include <vector>

#include "common/stats.hpp"
#include "mem/timing.hpp"
#include "trace/trace.hpp"

namespace hulkv::mem {

struct RpcDramConfig {
  u32 clk_div = 2;          // SoC cycles per RPC bus clock
  u32 num_banks = 4;
  u64 row_bytes = 2048;     // row-buffer size
  u64 total_bytes = 64ull * 1024 * 1024;
  u32 t_cmd_bus_clk = 2;    // serial command packet
  u32 t_rcd_bus_clk = 6;    // activate (row miss)
  u32 t_rp_bus_clk = 6;     // precharge (row conflict)
  u32 max_burst_bytes = 512;
  Cycles refresh_period = 4000;  // SoC cycles between refresh slots
  u32 refresh_extra_bus_clk = 8;

  /// Data bytes per SoC cycle at saturation (16-bit DDR).
  double peak_bytes_per_cycle() const { return 4.0 / clk_div; }
};

class RpcDramModel final : public MemTiming {
 public:
  explicit RpcDramModel(const RpcDramConfig& config);

  Cycles access(Cycles now, Addr addr, u32 bytes, bool is_write) override;

  /// Freshly-constructed state (device idle, rows closed).
  void reset();

  /// Snapshot traversal.
  void serialize(snapshot::Archive& ar);

  const RpcDramConfig& config() const { return config_; }
  const StatGroup& stats() const { return stats_; }
  StatGroup& stats() { return stats_; }

 private:
  Cycles burst(Cycles start, Addr addr, u32 bytes);

  u32 bank_of(Addr addr) const {
    return static_cast<u32>((addr / config_.row_bytes) % config_.num_banks);
  }
  u64 row_of(Addr addr) const {
    return addr / config_.row_bytes / config_.num_banks;
  }

  RpcDramConfig config_;
  Cycles busy_until_ = 0;
  Cycles next_refresh_;
  std::vector<i64> open_row_;  // -1 = closed
  StatGroup stats_;
  trace::TrackHandle trace_track_;
};

}  // namespace hulkv::mem
