// Host-side telemetry tests (src/telemetry/, DESIGN.md §14): histogram
// bucket soundness and merge algebra, percentile error bounds, span
// nesting + TLS flush + retention caps, the JSON reader, and the run
// manifest round trip. The SweepEngine* suites double as the TSan
// coverage for the always-on batch statistics (ci.sh runs the TSan
// tree with -R '^(RunJobs|SweepEngine|SocSnapshot|Determinism)').
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "batch/batch.hpp"
#include "common/rng.hpp"
#include "isa/threaded.hpp"
#include "report/report.hpp"
#include "telemetry/histogram.hpp"
#include "telemetry/json.hpp"
#include "telemetry/manifest.hpp"
#include "telemetry/telemetry.hpp"

namespace hulkv::telemetry {
namespace {

// ---------------------------------------------------------------------
// Bucket scheme.

TEST(TelemetryHistogram, BucketBoundsAreSoundExhaustiveSmall) {
  // Every value up to 1M lands in a bucket whose [lower, upper] range
  // contains it, and indices never decrease as values grow.
  u32 prev_index = 0;
  for (u64 v = 0; v <= 1000000; ++v) {
    const u32 index = bucket_index(v);
    ASSERT_LT(index, kNumBuckets);
    ASSERT_LE(bucket_lower(index), v) << v;
    ASSERT_GE(bucket_upper(index), v) << v;
    ASSERT_GE(index, prev_index) << v;
    prev_index = index;
  }
}

TEST(TelemetryHistogram, BucketBoundsAreSoundAcrossAllOctaves) {
  // Probe each octave at its edges (first, last, one-past-boundary
  // neighbours) all the way to the top of the u64 range.
  for (u32 shift = 6; shift < 64; ++shift) {
    const u64 base = u64{1} << shift;
    for (const u64 v :
         {base - 1, base, base + 1, base + base / 2, base * 2 - 1}) {
      const u32 index = bucket_index(v);
      ASSERT_LT(index, kNumBuckets);
      ASSERT_LE(bucket_lower(index), v) << v;
      ASSERT_GE(bucket_upper(index), v) << v;
    }
  }
  EXPECT_EQ(bucket_index(~u64{0}), kNumBuckets - 1);
  EXPECT_EQ(bucket_upper(kNumBuckets - 1), ~u64{0});
}

TEST(TelemetryHistogram, BucketWidthBoundsRelativeError) {
  // Values below 64 are exact; above, a bucket spans at most lower/32,
  // which is what bounds the percentile quantisation error at 3.125%.
  for (u32 index = 0; index < kNumBuckets - 1; ++index) {
    const u64 lower = bucket_lower(index);
    const u64 width = bucket_upper(index) - lower + 1;
    if (lower < kSubBucketCount) {
      ASSERT_EQ(width, 1u) << index;
    } else {
      ASSERT_LE(width, lower / 32) << index;
    }
    // Buckets tile the axis: no gaps, no overlap.
    ASSERT_EQ(bucket_upper(index) + 1, bucket_lower(index + 1)) << index;
  }
}

// ---------------------------------------------------------------------
// HistogramData: exact fields, merge algebra, percentiles.

TEST(TelemetryHistogram, ExactFieldsAndMidpointRepresentatives) {
  HistogramData h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty: min reports 0, not ~0
  EXPECT_EQ(h.percentile(50), 0u);

  h.record(7);
  h.record(100, 3);
  h.record(1000000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 7u + 300u + 1000000u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_DOUBLE_EQ(h.mean(), (7.0 + 300.0 + 1000000.0) / 5.0);
}

HistogramData random_histogram(u64 seed, int samples) {
  Xoshiro256 rng(seed);
  HistogramData h;
  for (int i = 0; i < samples; ++i) {
    // Mix magnitudes so multiple octaves are populated.
    h.record(rng.next() >> (rng.next_below(56)));
  }
  return h;
}

TEST(TelemetryHistogram, MergeIsCommutative) {
  const HistogramData a = random_histogram(1, 500);
  const HistogramData b = random_histogram(2, 300);
  HistogramData ab = a;
  ab.merge(b);
  HistogramData ba = b;
  ba.merge(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_EQ(ab.count(), a.count() + b.count());
  EXPECT_EQ(ab.sum(), a.sum() + b.sum());
}

TEST(TelemetryHistogram, MergeIsAssociativeWithIdentity) {
  const HistogramData a = random_histogram(3, 400);
  const HistogramData b = random_histogram(4, 200);
  const HistogramData c = random_histogram(5, 100);

  HistogramData ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);

  HistogramData bc = b;
  bc.merge(c);
  HistogramData a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(ab_c == a_bc);

  HistogramData with_identity = a;
  with_identity.merge(HistogramData{});
  EXPECT_TRUE(with_identity == a);
}

TEST(TelemetryHistogram, PercentileWithinBucketErrorBound) {
  // Uniform 1..N: the exact percentile is known, and the histogram's
  // estimate must stay within the 1/32 relative bound (+1 for the
  // integer edges of the exact range).
  constexpr u64 kN = 200000;
  HistogramData h;
  for (u64 v = 1; v <= kN; ++v) h.record(v);
  for (const double p : {1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const u64 exact = static_cast<u64>(p / 100.0 * kN);
    const u64 estimate = h.percentile(p);
    const u64 tolerance = exact / 32 + 1;
    EXPECT_NEAR(static_cast<double>(estimate),
                static_cast<double>(exact),
                static_cast<double>(tolerance))
        << "p" << p;
  }
}

TEST(TelemetryHistogram, PercentileClampsIntoObservedRange) {
  HistogramData h;
  h.record(1000);  // single sample: every percentile is that sample
  for (const double p : {0.0, 50.0, 100.0}) {
    EXPECT_EQ(h.percentile(p), 1000u) << p;
  }
}

TEST(TelemetryHistogram, SummaryTextSharedFormat) {
  // The human-readable latency line shared by hulkv-loadgen stderr and
  // hulkv-stats tail/top: fixed field order, unit-tiered durations.
  EXPECT_EQ(format_duration_ns(500), "500ns");
  EXPECT_EQ(format_duration_ns(1500), "1.50us");
  EXPECT_EQ(format_duration_ns(2.5e6), "2.50ms");
  EXPECT_EQ(format_duration_ns(3e9), "3.00s");
  EXPECT_EQ(latency_summary_text(4, 1e6, 5e5, 2e6, 3e6, 4e6),
            "n=4 mean=1.00ms p50=500.00us p90=2.00ms p99=3.00ms "
            "p99.9=4.00ms");

  HistogramData h;
  h.record(1000);
  EXPECT_EQ(h.summary_text(),
            "n=1 mean=1.00us p50=1.00us p90=1.00us p99=1.00us "
            "p99.9=1.00us");
}

TEST(TelemetryHistogram, AtomicMatchesSerialUnderConcurrentRecords) {
  // N threads record disjoint value streams; the merged snapshot must
  // equal the serially-built reference exactly (adds never lost).
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  AtomicHistogram atomic;
  HistogramData expected;
  for (int t = 0; t < kThreads; ++t) {
    Xoshiro256 rng(100 + static_cast<u64>(t));
    for (int i = 0; i < kPerThread; ++i) {
      expected.record(rng.next() >> 32);
    }
  }
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&atomic, t] {
      Xoshiro256 rng(100 + static_cast<u64>(t));
      for (int i = 0; i < kPerThread; ++i) {
        atomic.record(rng.next() >> 32);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_TRUE(atomic.snapshot() == expected);
}

// ---------------------------------------------------------------------
// Spans, the registry, TLS flush.

/// Every span/registry test runs against a clean, disabled registry
/// and leaves it that way (telemetry state is process-global).
class TelemetrySpans : public ::testing::Test {
 protected:
  void SetUp() override {
    registry().reset();
    registry().enable();
  }
  void TearDown() override {
    registry().reset();
    registry().disable();
  }
};

TEST_F(TelemetrySpans, SpanRecordsIntoHistogramAndRetention) {
  {
    const Span span(SpanPhase::kSnapshotSave);
  }
  const HistogramData h = registry().phase_histogram(SpanPhase::kSnapshotSave);
  EXPECT_EQ(h.count(), 1u);
  const std::vector<SpanRecord> spans = registry().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].phase, SpanPhase::kSnapshotSave);
  EXPECT_EQ(spans[0].depth, 0u);
}

TEST_F(TelemetrySpans, NestedSpansCarryDepth) {
  {
    const Span outer(SpanPhase::kBatchJob);
    {
      const Span inner(SpanPhase::kProgramLoad);
      const Span innermost(SpanPhase::kProgramAnalyze);
    }
  }
  const std::vector<SpanRecord> spans = registry().spans();
  ASSERT_EQ(spans.size(), 3u);
  // Spans close innermost-first on the recording thread.
  EXPECT_EQ(spans[0].phase, SpanPhase::kProgramAnalyze);
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_EQ(spans[1].phase, SpanPhase::kProgramLoad);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].phase, SpanPhase::kBatchJob);
  EXPECT_EQ(spans[2].depth, 0u);
  // One thread recorded everything.
  EXPECT_EQ(spans[0].thread, spans[2].thread);
}

TEST_F(TelemetrySpans, TlsBufferFlushesBeyondBatchSize) {
  // More spans than the 256-record TLS buffer: everything must still
  // be visible through spans() (which flushes the calling thread).
  constexpr int kSpans = 300;
  for (int i = 0; i < kSpans; ++i) {
    const Span span(SpanPhase::kBlockTranslate);
  }
  EXPECT_EQ(registry().spans().size(), static_cast<size_t>(kSpans));
  EXPECT_EQ(
      registry().phase_histogram(SpanPhase::kBlockTranslate).count(),
      static_cast<u64>(kSpans));
  EXPECT_EQ(registry().dropped_spans(), 0u);
}

TEST_F(TelemetrySpans, RetentionCapDropsSpansButKeepsHistograms) {
  registry().set_span_capacity(100);
  for (int i = 0; i < 400; ++i) {
    const Span span(SpanPhase::kHostDispatch);
  }
  const std::vector<SpanRecord> spans = registry().spans();
  EXPECT_EQ(spans.size(), 100u);
  EXPECT_EQ(registry().dropped_spans(), 300u);
  // The histogram never drops: aggregate statistics stay exact.
  EXPECT_EQ(registry().phase_histogram(SpanPhase::kHostDispatch).count(),
            400u);
}

TEST_F(TelemetrySpans, DisabledSpansRecordNothing) {
  registry().disable();
  {
    const Span span(SpanPhase::kSnapshotDigest);
  }
  registry().enable();  // re-enable to read (TearDown resets anyway)
  EXPECT_EQ(registry().phase_histogram(SpanPhase::kSnapshotDigest).count(),
            0u);
  EXPECT_TRUE(registry().spans().empty());
}

TEST_F(TelemetrySpans, SpansFromWorkerThreadsGetDistinctLanes) {
  constexpr int kThreads = 3;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      const Span span(SpanPhase::kBatchJob);
    });  // thread exit flushes its TLS buffer
  }
  for (std::thread& th : pool) th.join();
  const std::vector<SpanRecord> spans = registry().spans();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads));
  // Dense per-thread indices: all distinct.
  for (int a = 0; a < kThreads; ++a) {
    for (int b = a + 1; b < kThreads; ++b) {
      EXPECT_NE(spans[a].thread, spans[b].thread);
    }
  }
}

TEST_F(TelemetrySpans, NoteDeduplicationAndProgramDigests) {
  registry().note_config_fingerprint(42);
  registry().note_config_fingerprint(42);
  registry().note_config_fingerprint(7);
  EXPECT_EQ(registry().config_fingerprints().size(), 2u);

  const u32 words[4] = {1, 2, 3, 4};
  note_program("prog-a", words, sizeof(words));
  note_program("prog-a", words, sizeof(words));  // exact repeat: deduped
  note_program("prog-b", words, sizeof(words));  // same bytes, new name
  const auto digests = registry().program_digests();
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_EQ(digests[0].first, "prog-a");
  EXPECT_EQ(digests[1].first, "prog-b");
  EXPECT_EQ(digests[0].second, digests[1].second);  // same image bytes
}

// ---------------------------------------------------------------------
// JSON reader.

TEST(TelemetryJson, ParsesScalarsContainersAndEscapes) {
  const json::Value v = json::parse(
      R"({"a": 1.5, "b": [true, null, "x\nA"], "nested": {"k": -7}})");
  ASSERT_TRUE(v.is(json::Kind::kObject));
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  const json::Array& arr = v.find("b")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is(json::Kind::kNull));
  EXPECT_EQ(arr[2].as_string(), "x\nA");
  EXPECT_DOUBLE_EQ(v.find_path("nested.k")->as_number(), -7.0);
  EXPECT_EQ(v.find_path("nested.missing"), nullptr);
}

TEST(TelemetryJson, KeepsRawNumberTextForExactIntegers) {
  // 2^63-ish fingerprints lose precision as doubles; the raw token
  // text must survive for exact comparisons.
  const json::Value v = json::parse(R"({"d": 13198352154954890827})");
  EXPECT_EQ(v.find("d")->raw_number(), "13198352154954890827");
}

TEST(TelemetryJson, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), SimError);
  EXPECT_THROW(json::parse("[1,]"), SimError);
  EXPECT_THROW(json::parse("{} trailing"), SimError);
  EXPECT_THROW(json::parse("'single'"), SimError);
}

TEST(TelemetryJson, ParsesJsonLines) {
  const std::vector<json::Value> lines =
      json::parse_lines("{\"n\":1}\r\n\n{\"n\":2}\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_DOUBLE_EQ(lines[0].find("n")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(lines[1].find("n")->as_number(), 2.0);
}

// ---------------------------------------------------------------------
// Run manifests.

TEST(TelemetryManifest, BuildSerializeParseRoundTrip) {
  registry().reset();
  registry().enable();
  {
    const Span span(SpanPhase::kProgramLoad);
  }
  registry().note_config_fingerprint(12345);
  const u32 words[2] = {0x13, 0x6f};
  note_program("round-trip", words, sizeof(words));
  SweepSummary sweep;
  sweep.jobs = 8;
  sweep.workers = 2;
  sweep.wall_ns = 1000;
  sweep.busy_ns = 1800;
  sweep.p50_ns = 200;
  sweep.p99_ns = 400;
  sweep.max_in_flight = 2;
  sweep.jobs_per_s = 8e6;
  sweep.utilization = 0.9;
  registry().note_sweep(sweep);

  report::MetricsReport rep("roundtrip_bench");
  rep.add_metric("speedup", report::Value::number(2.5, 2), "x");
  rep.add_metric("label", report::Value::text("not-a-number"));

  const Manifest m = build_manifest(rep, registry());
  registry().reset();
  registry().disable();

  const json::Value v = json::parse(m.to_json_line());
  EXPECT_DOUBLE_EQ(v.find("schema_version")->as_number(),
                   kManifestSchemaVersion);
  // v3: the manifest carries its kind ("bench" by default, "serve"
  // for daemon manifests).
  EXPECT_EQ(v.find("kind")->as_string(), kManifestKindBench);
  EXPECT_EQ(v.find("bench")->as_string(), "roundtrip_bench");
  // v2: the manifest records the process-wide execution tier.
  EXPECT_EQ(v.find("tier")->as_string(),
            isa::tier_name(isa::default_tier()));
  EXPECT_FALSE(v.find_path("host.hostname")->as_string().empty());
  ASSERT_EQ(v.find("config_fingerprints")->as_array().size(), 1u);
  EXPECT_EQ(v.find("config_fingerprints")->as_array()[0].raw_number(),
            "12345");
  const json::Array& digests = v.find("program_digests")->as_array();
  ASSERT_EQ(digests.size(), 1u);
  EXPECT_EQ(digests[0].find("name")->as_string(), "round-trip");
  // Metric digits match the report's own JSON rendering exactly.
  EXPECT_EQ(v.find_path("metrics.speedup.value")->raw_number(), "2.50");
  EXPECT_EQ(v.find_path("metrics.speedup.unit")->as_string(), "x");
  EXPECT_EQ(v.find_path("metrics.label.value")->as_string(),
            "not-a-number");
  // The one recorded span phase is summarised; empty phases are absent.
  ASSERT_NE(v.find_path("phases.program_load"), nullptr);
  EXPECT_DOUBLE_EQ(
      v.find_path("phases.program_load.count")->as_number(), 1.0);
  EXPECT_EQ(v.find_path("phases.block_translate"), nullptr);
  const json::Array& sweeps = v.find("sweeps")->as_array();
  ASSERT_EQ(sweeps.size(), 1u);
  EXPECT_DOUBLE_EQ(sweeps[0].find("jobs")->as_number(), 8.0);
  EXPECT_DOUBLE_EQ(sweeps[0].find("utilization")->as_number(), 0.9);
}

TEST(TelemetryManifest, ServeRequestsSectionRoundTrips) {
  // v4: a serve manifest carries per-request aggregates; a bench
  // manifest (serve_requests.present == false) omits the section.
  Manifest m;
  m.bench = "v4_test";
  m.kind = kManifestKindServe;
  m.serve_requests.present = true;
  m.serve_requests.outcomes = {{"ok", 12}, {"bad_request", 3}};
  Manifest::PhaseSummary stage;
  stage.phase = "queue_wait";
  stage.latency.record(1000);
  stage.latency.record(3000);
  m.serve_requests.stages.push_back(stage);

  const json::Value v = json::parse(m.to_json_line());
  const json::Value* sr = v.find("serve_requests");
  ASSERT_NE(sr, nullptr);
  const json::Value* outcomes = sr->find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  EXPECT_DOUBLE_EQ(outcomes->find("ok")->as_number(), 12.0);
  EXPECT_DOUBLE_EQ(outcomes->find("bad_request")->as_number(), 3.0);
  const json::Value* stages = sr->find("stages");
  ASSERT_NE(stages, nullptr);
  const json::Value* qw = stages->find("queue_wait");
  ASSERT_NE(qw, nullptr);
  EXPECT_DOUBLE_EQ(qw->find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(qw->find("sum")->as_number(), 4000.0);

  Manifest bench;
  bench.bench = "v4_bench";
  EXPECT_EQ(json::parse(bench.to_json_line()).find("serve_requests"),
            nullptr);
}

TEST(TelemetryManifest, AppendManifestAccumulatesJsonLines) {
  char tmpl[] = "/tmp/hulkv_manifest_test.XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  Manifest m;
  m.bench = "append_test";
  m.hostname = "unit";
  m.kind = kManifestKindServe;  // v3: non-default kind round-trips
  const std::string path1 = append_manifest(dir, m);
  const std::string path2 = append_manifest(dir, m);
  EXPECT_EQ(path1, path2);
  EXPECT_EQ(path1, dir + "/append_test.jsonl");

  std::ifstream in(path1);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const std::vector<json::Value> runs = json::parse_lines(text);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[1].find("bench")->as_string(), "append_test");
  EXPECT_EQ(runs[1].find("kind")->as_string(), kManifestKindServe);

  std::remove(path1.c_str());
  rmdir(dir.c_str());
}

// ---------------------------------------------------------------------
// Sweep statistics (TSan-covered via the SweepEngine suite name).

TEST(SweepEngineStats, SerialRunJobsMeasuresEveryJob) {
  std::atomic<u64> ran{0};
  batch::run_jobs(5, 1, [&](u64) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 5u);
  const batch::SweepStats& stats = batch::last_sweep_stats();
  EXPECT_EQ(stats.jobs, 5u);
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.latency.count(), 5u);
  EXPECT_GT(stats.wall_ns, 0u);
  EXPECT_GT(stats.busy_ns, 0u);
  EXPECT_EQ(stats.max_in_flight, 1u);  // serial: never concurrent
  ASSERT_EQ(stats.in_flight_samples.size(), 5u);
  for (const u64 depth : stats.in_flight_samples) EXPECT_EQ(depth, 1u);
}

TEST(SweepEngineStats, ParallelRunJobsBoundsInFlightByWorkers) {
  constexpr u64 kJobs = 32;
  constexpr u32 kWorkers = 4;
  std::atomic<u64> ran{0};
  batch::run_jobs(kJobs, kWorkers, [&](u64) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), kJobs);
  const batch::SweepStats& stats = batch::last_sweep_stats();
  EXPECT_EQ(stats.jobs, kJobs);
  EXPECT_EQ(stats.workers, kWorkers);
  EXPECT_EQ(stats.latency.count(), kJobs);
  EXPECT_GE(stats.max_in_flight, 1u);
  EXPECT_LE(stats.max_in_flight, kWorkers);
  EXPECT_GT(stats.utilization(), 0.0);
  ASSERT_EQ(stats.in_flight_samples.size(), kJobs);
  for (const u64 depth : stats.in_flight_samples) {
    EXPECT_GE(depth, 1u);
    EXPECT_LE(depth, kWorkers);
  }
}

TEST(SweepEngineStats, StatsReportCarriesHeadlineMetrics) {
  const batch::SweepEngine engine(2);
  const std::vector<int> out =
      engine.map<int>(6, [](u64 index) { return static_cast<int>(index); });
  EXPECT_EQ(out.size(), 6u);
  const report::MetricsReport rep = engine.stats_report("sweep_stats");
  for (const char* key :
       {"sweep.jobs", "sweep.jobs_per_s", "sweep.latency_p50",
        "sweep.latency_p99", "sweep.utilization", "sweep.max_in_flight"}) {
    EXPECT_NE(rep.metric(key), nullptr) << key;
  }
  EXPECT_EQ(rep.metric_text("sweep.jobs"), "6");
}

TEST(SweepEngineStats, SweepSummaryReachesTelemetryRegistry) {
  registry().reset();
  registry().enable();
  batch::run_jobs(4, 2, [](u64) {});
  const std::vector<SweepSummary> sweeps = registry().sweeps();
  registry().reset();
  registry().disable();
  ASSERT_EQ(sweeps.size(), 1u);
  EXPECT_EQ(sweeps[0].jobs, 4u);
  EXPECT_EQ(sweeps[0].workers, 2u);
  // Jobs also landed in the batch-job span histogram.
}

TEST(SweepEngineStats, EmptyRunClearsLastStats) {
  batch::run_jobs(3, 1, [](u64) {});
  EXPECT_EQ(batch::last_sweep_stats().jobs, 3u);
  batch::run_jobs(0, 4, [](u64) { FAIL() << "no jobs expected"; });
  EXPECT_EQ(batch::last_sweep_stats().jobs, 0u);
  EXPECT_EQ(batch::last_sweep_stats().latency.count(), 0u);
}

}  // namespace
}  // namespace hulkv::telemetry
