// SoC-wide event tracing (DESIGN.md section 9).
//
// Every simulated block can emit cycle-stamped events into one global
// TraceSink. Tracing is purely observational: no timing model consults
// the sink, so cycle counts are bit-identical whether tracing is on or
// off. When tracing is disabled the per-event cost at a call site is a
// single branch on `trace::enabled()` (an inline load of a plain bool).
//
// Consumers:
//   - trace/chrome_trace.hpp: Perfetto/Chrome `trace_event` JSON export,
//   - trace/windowed.hpp:     per-N-cycles aggregation (activity curves),
//   - power/power_trace.hpp:  power-over-time from windowed activity.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace hulkv::trace {

/// Event taxonomy. Each value maps 1:1 onto a Chrome trace_event name
/// (see `event_name`) and a windowed-aggregation series.
enum class Ev : u16 {
  // Cores.
  kRun,            // complete: one host run / one PMCA kernel execution
  kCommitBatch,    // counter: instructions retired since the last batch
  kStall,          // instant: long load (value = stall cycles, arg = addr)
  // Caches (L1 + LLC).
  kHitBatch,       // counter: L1 hits since the last batch
  kHit,            // instant: LLC hit (value = line address)
  kMiss,           // instant: line miss / refill (value = line address)
  kWriteback,      // instant: dirty line written back (value = line addr)
  kEvict,          // instant: LLC eviction (value = line address)
  kBypass,         // instant: LLC bypass of a non-cacheable access
  // External memory devices.
  kMemXact,        // complete: one device transaction (value = bytes,
                   //           arg = packed breakdown, see xact_arg)
  kRefreshCollision,  // instant: burst collided with refresh (value =
                      //          extra cycles spent waiting)
  // TCDM.
  kAccessBatch,    // counter: TCDM accesses since the last batch
  kConflict,       // instant: bank conflict (value = bank index)
  // DMA engines.
  kDmaJob,         // complete: one cluster-DMA / uDMA job (value = bytes)
  // Synchronisation and the offload runtime.
  kBarrier,        // complete: last arrival -> wake-up (value = #cores)
  kDispatch,      // instant: cluster team dispatch (value = team size)
  kCodeLoad,       // complete: lazy kernel-image copy to L2 (value = bytes)
  kMarshal,        // complete: offload argument marshalling
  kMailbox,        // instant: doorbell / completion token (value = word)
  kKernel,         // complete: kernel phase of one offload
  kOffload,        // complete: whole offload (value = kernel index)
  // Profiler (src/profile/).
  kStallCycles,    // counter: attributed stall cycles since the last
                   //          flush (one track per core x stall reason)
};

/// Number of event types (for array-indexed per-type state).
inline constexpr size_t kNumEventTypes =
    static_cast<size_t>(Ev::kStallCycles) + 1;

/// Stable lowercase name of an event type ("miss", "mem_xact", ...).
const char* event_name(Ev type);

/// How an event type renders in Chrome trace_event terms.
enum class Phase : u8 {
  kInstant,   // zero-duration marker            -> "i"
  kComplete,  // interval with start + duration  -> "X"
  kCounter,   // accumulating counter delta      -> "C"
};
Phase event_phase(Ev type);

/// One recorded event. Plain data; `dur`/`value`/`arg` meaning depends
/// on the event type (see the Ev comments above).
struct Event {
  Cycles ts = 0;    // start timestamp in cycles
  Cycles dur = 0;   // duration in cycles (complete events only)
  u64 value = 0;    // primary payload (delta for counters)
  u64 arg = 0;      // secondary payload
  u32 track = 0;    // interned track id
  Ev type{};
};

/// Packed latency breakdown carried in `Event::arg` by kMemXact events.
struct XactArg {
  bool write = false;
  u32 bursts = 0;              // CA/command phases issued
  u32 refresh_collisions = 0;  // bursts delayed by refresh
};
u64 pack_xact_arg(const XactArg& a);
XactArg unpack_xact_arg(u64 packed);

/// Sentinel for an unregistered track id.
inline constexpr u32 kNoTrack = 0xFFFF'FFFFu;

/// Cached track registration. Blocks keep one TrackHandle per track and
/// resolve it lazily at first emit, so construction never touches the
/// sink and renaming stays in one place. The generation check keeps a
/// stale handle from pointing at a recycled id after TraceSink::clear().
struct TrackHandle {
  u32 id = kNoTrack;
  u32 gen = 0;
};

namespace detail {
extern bool g_enabled;  // mirrors TraceSink enabled state; do not write
}  // namespace detail

/// True when the global sink is recording. This is the only check hot
/// paths perform when tracing is off.
inline bool enabled() { return detail::g_enabled; }

/// The global event sink. One per process: simulated time is one
/// timeline, and interning tracks by name keeps ids stable across the
/// SoC blocks that emit into it.
class TraceSink {
 public:
  static TraceSink& instance();

  bool is_enabled() const { return enabled_; }
  void enable();
  void disable();

  /// Drop all events and tracks (handles re-register via generation).
  void clear();

  /// Intern a track by name; returns its stable id.
  u32 track(std::string_view name);

  /// Resolve a cached handle, registering the track on first use.
  u32 resolve(TrackHandle& handle, std::string_view name);

  /// Id of an existing track, or kNoTrack.
  u32 find_track(std::string_view name) const;

  const std::vector<std::string>& track_names() const { return tracks_; }

  void instant(u32 track, Ev type, Cycles ts, u64 value = 0, u64 arg = 0);
  void complete(u32 track, Ev type, Cycles start, Cycles end,
                u64 value = 0, u64 arg = 0);
  void counter(u32 track, Ev type, Cycles ts, u64 delta);

  const std::vector<Event>& events() const { return events_; }

  /// Largest end-of-event timestamp recorded so far.
  Cycles max_timestamp() const { return max_ts_; }

  /// Events discarded because the capacity cap was hit.
  u64 dropped() const { return dropped_; }

  /// Cap on retained events (default 4M, ~160 MB). 0 means unlimited.
  void set_capacity(size_t max_events) { capacity_ = max_events; }

 private:
  TraceSink() = default;
  void push(const Event& e);

  bool enabled_ = false;
  u32 generation_ = 1;
  size_t capacity_ = size_t{4} << 20;
  u64 dropped_ = 0;
  Cycles max_ts_ = 0;
  std::vector<std::string> tracks_;
  std::vector<Event> events_;
};

/// Shorthand for the global sink.
inline TraceSink& sink() { return TraceSink::instance(); }

}  // namespace hulkv::trace
