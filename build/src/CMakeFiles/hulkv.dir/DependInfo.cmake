
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dnn.cpp" "src/CMakeFiles/hulkv.dir/apps/dnn.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/apps/dnn.cpp.o.d"
  "/root/repo/src/apps/dory_tiler.cpp" "src/CMakeFiles/hulkv.dir/apps/dory_tiler.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/apps/dory_tiler.cpp.o.d"
  "/root/repo/src/apps/networks.cpp" "src/CMakeFiles/hulkv.dir/apps/networks.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/apps/networks.cpp.o.d"
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/hulkv.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/cluster_dma.cpp" "src/CMakeFiles/hulkv.dir/cluster/cluster_dma.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/cluster/cluster_dma.cpp.o.d"
  "/root/repo/src/cluster/event_unit.cpp" "src/CMakeFiles/hulkv.dir/cluster/event_unit.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/cluster/event_unit.cpp.o.d"
  "/root/repo/src/cluster/icache.cpp" "src/CMakeFiles/hulkv.dir/cluster/icache.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/cluster/icache.cpp.o.d"
  "/root/repo/src/cluster/pmca_core.cpp" "src/CMakeFiles/hulkv.dir/cluster/pmca_core.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/cluster/pmca_core.cpp.o.d"
  "/root/repo/src/cluster/tcdm.cpp" "src/CMakeFiles/hulkv.dir/cluster/tcdm.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/cluster/tcdm.cpp.o.d"
  "/root/repo/src/common/half.cpp" "src/CMakeFiles/hulkv.dir/common/half.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/common/half.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/hulkv.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/hulkv.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/comparison.cpp" "src/CMakeFiles/hulkv.dir/core/comparison.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/core/comparison.cpp.o.d"
  "/root/repo/src/core/iopmp.cpp" "src/CMakeFiles/hulkv.dir/core/iopmp.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/core/iopmp.cpp.o.d"
  "/root/repo/src/core/mailbox.cpp" "src/CMakeFiles/hulkv.dir/core/mailbox.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/core/mailbox.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/hulkv.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/core/report.cpp.o.d"
  "/root/repo/src/core/soc.cpp" "src/CMakeFiles/hulkv.dir/core/soc.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/core/soc.cpp.o.d"
  "/root/repo/src/host/clint.cpp" "src/CMakeFiles/hulkv.dir/host/clint.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/host/clint.cpp.o.d"
  "/root/repo/src/host/cva6.cpp" "src/CMakeFiles/hulkv.dir/host/cva6.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/host/cva6.cpp.o.d"
  "/root/repo/src/host/periph_udma.cpp" "src/CMakeFiles/hulkv.dir/host/periph_udma.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/host/periph_udma.cpp.o.d"
  "/root/repo/src/host/plic.cpp" "src/CMakeFiles/hulkv.dir/host/plic.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/host/plic.cpp.o.d"
  "/root/repo/src/host/tlb.cpp" "src/CMakeFiles/hulkv.dir/host/tlb.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/host/tlb.cpp.o.d"
  "/root/repo/src/host/uart.cpp" "src/CMakeFiles/hulkv.dir/host/uart.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/host/uart.cpp.o.d"
  "/root/repo/src/isa/assembler.cpp" "src/CMakeFiles/hulkv.dir/isa/assembler.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/isa/assembler.cpp.o.d"
  "/root/repo/src/isa/decoder.cpp" "src/CMakeFiles/hulkv.dir/isa/decoder.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/isa/decoder.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/hulkv.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encoding.cpp" "src/CMakeFiles/hulkv.dir/isa/encoding.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/isa/encoding.cpp.o.d"
  "/root/repo/src/isa/parser.cpp" "src/CMakeFiles/hulkv.dir/isa/parser.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/isa/parser.cpp.o.d"
  "/root/repo/src/kernels/cluster_kernels.cpp" "src/CMakeFiles/hulkv.dir/kernels/cluster_kernels.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/kernels/cluster_kernels.cpp.o.d"
  "/root/repo/src/kernels/golden.cpp" "src/CMakeFiles/hulkv.dir/kernels/golden.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/kernels/golden.cpp.o.d"
  "/root/repo/src/kernels/host_kernels.cpp" "src/CMakeFiles/hulkv.dir/kernels/host_kernels.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/kernels/host_kernels.cpp.o.d"
  "/root/repo/src/kernels/iot_benchmarks.cpp" "src/CMakeFiles/hulkv.dir/kernels/iot_benchmarks.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/kernels/iot_benchmarks.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/CMakeFiles/hulkv.dir/kernels/kernel.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/kernels/kernel.cpp.o.d"
  "/root/repo/src/mem/backing_store.cpp" "src/CMakeFiles/hulkv.dir/mem/backing_store.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/backing_store.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/CMakeFiles/hulkv.dir/mem/cache.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/cache.cpp.o.d"
  "/root/repo/src/mem/ddr.cpp" "src/CMakeFiles/hulkv.dir/mem/ddr.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/ddr.cpp.o.d"
  "/root/repo/src/mem/hyperram.cpp" "src/CMakeFiles/hulkv.dir/mem/hyperram.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/hyperram.cpp.o.d"
  "/root/repo/src/mem/interconnect.cpp" "src/CMakeFiles/hulkv.dir/mem/interconnect.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/interconnect.cpp.o.d"
  "/root/repo/src/mem/llc.cpp" "src/CMakeFiles/hulkv.dir/mem/llc.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/llc.cpp.o.d"
  "/root/repo/src/mem/rpcdram.cpp" "src/CMakeFiles/hulkv.dir/mem/rpcdram.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/rpcdram.cpp.o.d"
  "/root/repo/src/mem/udma.cpp" "src/CMakeFiles/hulkv.dir/mem/udma.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/mem/udma.cpp.o.d"
  "/root/repo/src/power/energy.cpp" "src/CMakeFiles/hulkv.dir/power/energy.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/power/energy.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/hulkv.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/power/power_model.cpp.o.d"
  "/root/repo/src/runtime/hulk_malloc.cpp" "src/CMakeFiles/hulkv.dir/runtime/hulk_malloc.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/runtime/hulk_malloc.cpp.o.d"
  "/root/repo/src/runtime/offload.cpp" "src/CMakeFiles/hulkv.dir/runtime/offload.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/runtime/offload.cpp.o.d"
  "/root/repo/src/runtime/omp.cpp" "src/CMakeFiles/hulkv.dir/runtime/omp.cpp.o" "gcc" "src/CMakeFiles/hulkv.dir/runtime/omp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
