// Result cache of the serve daemon (DESIGN.md §16.3).
//
// A simulation point's result is a pure function of the SoC
// configuration, the guest program and the point parameters, so the
// cache key is the triple of their digests:
//
//   (config fingerprint, program digest, params digest)
//
// The config fingerprint is the exact value the snapshot kMeta section
// stores and restore validates (HulkVSoc::fingerprint_of); the program
// digest hashes the encoded instruction words; the params digest is
// salted with the protocol version. The cache stores ResultRow values,
// never encoded frames — the response encoder is deterministic, so a
// hit reproduces the miss's bytes exactly (pinned by serve_test).
#pragma once

#include <mutex>
#include <unordered_map>

#include "serve/protocol.hpp"

namespace hulkv::serve {

struct CacheKey {
  u64 config_fingerprint = 0;
  u64 program_digest = 0;
  u64 params_digest = 0;

  bool operator==(const CacheKey&) const = default;
};

/// Derive the cache key of one simulation point. Throws SimError on an
/// invalid point.
CacheKey point_cache_key(const PointParams& point);

/// Thread-safe bounded map from CacheKey to ResultRow. Insertions past
/// the capacity are dropped (the legal point space is tiny — 30 points
/// — so the bound only guards against a misbehaving future caller).
class ResultCache {
 public:
  explicit ResultCache(size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// Copy the cached row into `*row` and return true on a hit.
  /// Hit/miss counters update on every call.
  bool lookup(const CacheKey& key, ResultRow* row);

  void insert(const CacheKey& key, const ResultRow& row);

  u64 hits() const;
  u64 misses() const;
  u64 entries() const;

 private:
  struct KeyHash {
    size_t operator()(const CacheKey& k) const;
  };

  const size_t max_entries_;
  mutable std::mutex mu_;
  std::unordered_map<CacheKey, ResultRow, KeyHash> map_;
  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace hulkv::serve
