// Encoding table and encoder.
//
// Custom opcode space (RISC-V reserved vendor opcodes), repo-specific map:
//
//   custom-0 (0x0B): post-increment loads, I-format. funct3 selects the
//                    width exactly like the standard load opcode
//                    (0=lb 1=lh 2=lw 4=lbu 5=lhu); funct3=6 is p.clip.
//   custom-1 (0x2B): post-increment stores, S-format (0=sb 1=sh 2=sw).
//   custom-2 (0x5B): all R-type DSP/SIMD operations, funct3=0, funct7
//                    enumerates the operation (see table below).
//   custom-3 (0x7B): hardware-loop setup, I-format; funct3 selects
//                    starti/endi/count/counti/setup; rd holds the loop
//                    index (0 = innermost, 1 = outer).
#include "isa/encoding.hpp"

#include <array>

#include "common/bitutil.hpp"
#include "isa/encoding_table.hpp"

namespace hulkv::isa {

namespace detail {
namespace {

constexpr EncInfo E(Op op, Fmt fmt, u8 opcode, u8 f3 = 0, u8 f7 = 0,
                    u8 rs2_fix = 0, u32 word = 0) {
  return EncInfo{op, fmt, opcode, f3, f7, rs2_fix, word};
}

constexpr std::array kTable = {
    // ---- RV32I/RV64I ----
    E(Op::kLui, Fmt::kU, 0x37),
    E(Op::kAuipc, Fmt::kU, 0x17),
    E(Op::kJal, Fmt::kJ, 0x6F),
    E(Op::kJalr, Fmt::kI, 0x67, 0),
    E(Op::kBeq, Fmt::kB, 0x63, 0),
    E(Op::kBne, Fmt::kB, 0x63, 1),
    E(Op::kBlt, Fmt::kB, 0x63, 4),
    E(Op::kBge, Fmt::kB, 0x63, 5),
    E(Op::kBltu, Fmt::kB, 0x63, 6),
    E(Op::kBgeu, Fmt::kB, 0x63, 7),
    E(Op::kLb, Fmt::kI, 0x03, 0),
    E(Op::kLh, Fmt::kI, 0x03, 1),
    E(Op::kLw, Fmt::kI, 0x03, 2),
    E(Op::kLd, Fmt::kI, 0x03, 3),
    E(Op::kLbu, Fmt::kI, 0x03, 4),
    E(Op::kLhu, Fmt::kI, 0x03, 5),
    E(Op::kLwu, Fmt::kI, 0x03, 6),
    E(Op::kSb, Fmt::kS, 0x23, 0),
    E(Op::kSh, Fmt::kS, 0x23, 1),
    E(Op::kSw, Fmt::kS, 0x23, 2),
    E(Op::kSd, Fmt::kS, 0x23, 3),
    E(Op::kAddi, Fmt::kI, 0x13, 0),
    E(Op::kSlti, Fmt::kI, 0x13, 2),
    E(Op::kSltiu, Fmt::kI, 0x13, 3),
    E(Op::kXori, Fmt::kI, 0x13, 4),
    E(Op::kOri, Fmt::kI, 0x13, 6),
    E(Op::kAndi, Fmt::kI, 0x13, 7),
    E(Op::kSlli, Fmt::kShamt, 0x13, 1, 0x00),
    E(Op::kSrli, Fmt::kShamt, 0x13, 5, 0x00),
    E(Op::kSrai, Fmt::kShamt, 0x13, 5, 0x20),
    E(Op::kAdd, Fmt::kR, 0x33, 0, 0x00),
    E(Op::kSub, Fmt::kR, 0x33, 0, 0x20),
    E(Op::kSll, Fmt::kR, 0x33, 1, 0x00),
    E(Op::kSlt, Fmt::kR, 0x33, 2, 0x00),
    E(Op::kSltu, Fmt::kR, 0x33, 3, 0x00),
    E(Op::kXor, Fmt::kR, 0x33, 4, 0x00),
    E(Op::kSrl, Fmt::kR, 0x33, 5, 0x00),
    E(Op::kSra, Fmt::kR, 0x33, 5, 0x20),
    E(Op::kOr, Fmt::kR, 0x33, 6, 0x00),
    E(Op::kAnd, Fmt::kR, 0x33, 7, 0x00),
    E(Op::kAddiw, Fmt::kI, 0x1B, 0),
    E(Op::kSlliw, Fmt::kShamt, 0x1B, 1, 0x00),
    E(Op::kSrliw, Fmt::kShamt, 0x1B, 5, 0x00),
    E(Op::kSraiw, Fmt::kShamt, 0x1B, 5, 0x20),
    E(Op::kAddw, Fmt::kR, 0x3B, 0, 0x00),
    E(Op::kSubw, Fmt::kR, 0x3B, 0, 0x20),
    E(Op::kSllw, Fmt::kR, 0x3B, 1, 0x00),
    E(Op::kSrlw, Fmt::kR, 0x3B, 5, 0x00),
    E(Op::kSraw, Fmt::kR, 0x3B, 5, 0x20),
    E(Op::kFence, Fmt::kSys, 0x0F, 0, 0, 0, 0x0000000Fu),
    E(Op::kEcall, Fmt::kSys, 0x73, 0, 0, 0, 0x00000073u),
    E(Op::kEbreak, Fmt::kSys, 0x73, 0, 0, 0, 0x00100073u),
    E(Op::kWfi, Fmt::kSys, 0x73, 0, 0, 0, 0x10500073u),
    E(Op::kCsrrw, Fmt::kCsr, 0x73, 1),
    E(Op::kCsrrs, Fmt::kCsr, 0x73, 2),
    E(Op::kCsrrc, Fmt::kCsr, 0x73, 3),
    E(Op::kCsrrwi, Fmt::kCsrImm, 0x73, 5),
    E(Op::kCsrrsi, Fmt::kCsrImm, 0x73, 6),
    E(Op::kCsrrci, Fmt::kCsrImm, 0x73, 7),

    // ---- M ----
    E(Op::kMul, Fmt::kR, 0x33, 0, 0x01),
    E(Op::kMulh, Fmt::kR, 0x33, 1, 0x01),
    E(Op::kMulhsu, Fmt::kR, 0x33, 2, 0x01),
    E(Op::kMulhu, Fmt::kR, 0x33, 3, 0x01),
    E(Op::kDiv, Fmt::kR, 0x33, 4, 0x01),
    E(Op::kDivu, Fmt::kR, 0x33, 5, 0x01),
    E(Op::kRem, Fmt::kR, 0x33, 6, 0x01),
    E(Op::kRemu, Fmt::kR, 0x33, 7, 0x01),
    E(Op::kMulw, Fmt::kR, 0x3B, 0, 0x01),
    E(Op::kDivw, Fmt::kR, 0x3B, 4, 0x01),
    E(Op::kDivuw, Fmt::kR, 0x3B, 5, 0x01),
    E(Op::kRemw, Fmt::kR, 0x3B, 6, 0x01),
    E(Op::kRemuw, Fmt::kR, 0x3B, 7, 0x01),

    // ---- F ----
    E(Op::kFlw, Fmt::kI, 0x07, 2),
    E(Op::kFsw, Fmt::kS, 0x27, 2),
    E(Op::kFaddS, Fmt::kR, 0x53, 0, 0x00),
    E(Op::kFsubS, Fmt::kR, 0x53, 0, 0x04),
    E(Op::kFmulS, Fmt::kR, 0x53, 0, 0x08),
    E(Op::kFdivS, Fmt::kR, 0x53, 0, 0x0C),
    E(Op::kFsqrtS, Fmt::kRUnary, 0x53, 0, 0x2C, 0),
    E(Op::kFmaddS, Fmt::kR4, 0x43, 0, 0x00),
    E(Op::kFmsubS, Fmt::kR4, 0x47, 0, 0x00),
    E(Op::kFsgnjS, Fmt::kR, 0x53, 0, 0x10),
    E(Op::kFsgnjnS, Fmt::kR, 0x53, 1, 0x10),
    E(Op::kFsgnjxS, Fmt::kR, 0x53, 2, 0x10),
    E(Op::kFminS, Fmt::kR, 0x53, 0, 0x14),
    E(Op::kFmaxS, Fmt::kR, 0x53, 1, 0x14),
    E(Op::kFeqS, Fmt::kR, 0x53, 2, 0x50),
    E(Op::kFltS, Fmt::kR, 0x53, 1, 0x50),
    E(Op::kFleS, Fmt::kR, 0x53, 0, 0x50),
    E(Op::kFcvtWS, Fmt::kRUnary, 0x53, 0, 0x60, 0),
    E(Op::kFcvtLS, Fmt::kRUnary, 0x53, 0, 0x60, 2),
    E(Op::kFcvtSW, Fmt::kRUnary, 0x53, 0, 0x68, 0),
    E(Op::kFcvtSL, Fmt::kRUnary, 0x53, 0, 0x68, 2),
    E(Op::kFmvXW, Fmt::kRUnary, 0x53, 0, 0x70, 0),
    E(Op::kFmvWX, Fmt::kRUnary, 0x53, 0, 0x78, 0),

    // ---- D ----
    E(Op::kFld, Fmt::kI, 0x07, 3),
    E(Op::kFsd, Fmt::kS, 0x27, 3),
    E(Op::kFaddD, Fmt::kR, 0x53, 0, 0x01),
    E(Op::kFsubD, Fmt::kR, 0x53, 0, 0x05),
    E(Op::kFmulD, Fmt::kR, 0x53, 0, 0x09),
    E(Op::kFdivD, Fmt::kR, 0x53, 0, 0x0D),
    E(Op::kFmaddD, Fmt::kR4, 0x43, 0, 0x01),
    E(Op::kFmsubD, Fmt::kR4, 0x47, 0, 0x01),
    E(Op::kFsgnjD, Fmt::kR, 0x53, 0, 0x11),
    E(Op::kFsgnjnD, Fmt::kR, 0x53, 1, 0x11),
    E(Op::kFsgnjxD, Fmt::kR, 0x53, 2, 0x11),
    E(Op::kFeqD, Fmt::kR, 0x53, 2, 0x51),
    E(Op::kFltD, Fmt::kR, 0x53, 1, 0x51),
    E(Op::kFleD, Fmt::kR, 0x53, 0, 0x51),
    E(Op::kFcvtWD, Fmt::kRUnary, 0x53, 0, 0x61, 0),
    E(Op::kFcvtLD, Fmt::kRUnary, 0x53, 0, 0x61, 2),
    E(Op::kFcvtDW, Fmt::kRUnary, 0x53, 0, 0x69, 0),
    E(Op::kFcvtDL, Fmt::kRUnary, 0x53, 0, 0x69, 2),
    E(Op::kFcvtDS, Fmt::kRUnary, 0x53, 0, 0x21, 0),
    E(Op::kFcvtSD, Fmt::kRUnary, 0x53, 0, 0x20, 1),
    E(Op::kFmvXD, Fmt::kRUnary, 0x53, 0, 0x71, 0),
    E(Op::kFmvDX, Fmt::kRUnary, 0x53, 0, 0x79, 0),

    // ---- Xpulp hardware loops (custom-3) ----
    E(Op::kLpStarti, Fmt::kI, 0x7B, 0),
    E(Op::kLpEndi, Fmt::kI, 0x7B, 1),
    E(Op::kLpCount, Fmt::kI, 0x7B, 2),
    E(Op::kLpCounti, Fmt::kI, 0x7B, 3),
    E(Op::kLpSetup, Fmt::kI, 0x7B, 4),

    // ---- Xpulp post-increment loads/stores (custom-0/1) ----
    E(Op::kPLbPost, Fmt::kI, 0x0B, 0),
    E(Op::kPLhPost, Fmt::kI, 0x0B, 1),
    E(Op::kPLwPost, Fmt::kI, 0x0B, 2),
    E(Op::kPLbuPost, Fmt::kI, 0x0B, 4),
    E(Op::kPLhuPost, Fmt::kI, 0x0B, 5),
    E(Op::kPClip, Fmt::kI, 0x0B, 6),
    E(Op::kPSbPost, Fmt::kS, 0x2B, 0),
    E(Op::kPShPost, Fmt::kS, 0x2B, 1),
    E(Op::kPSwPost, Fmt::kS, 0x2B, 2),

    // ---- Xpulp R-type DSP/SIMD (custom-2, funct7 enumerates) ----
    E(Op::kPMac, Fmt::kR, 0x5B, 0, 0),
    E(Op::kPMsu, Fmt::kR, 0x5B, 0, 1),
    E(Op::kPAbs, Fmt::kRUnary, 0x5B, 0, 2, 0),
    E(Op::kPMin, Fmt::kR, 0x5B, 0, 3),
    E(Op::kPMax, Fmt::kR, 0x5B, 0, 4),
    E(Op::kPExths, Fmt::kRUnary, 0x5B, 0, 5, 0),
    E(Op::kPExthz, Fmt::kRUnary, 0x5B, 0, 6, 0),
    E(Op::kPExtbs, Fmt::kRUnary, 0x5B, 0, 7, 0),
    E(Op::kPExtbz, Fmt::kRUnary, 0x5B, 0, 8, 0),
    E(Op::kPvAddB, Fmt::kR, 0x5B, 0, 16),
    E(Op::kPvAddH, Fmt::kR, 0x5B, 0, 17),
    E(Op::kPvSubB, Fmt::kR, 0x5B, 0, 18),
    E(Op::kPvSubH, Fmt::kR, 0x5B, 0, 19),
    E(Op::kPvMinB, Fmt::kR, 0x5B, 0, 20),
    E(Op::kPvMinH, Fmt::kR, 0x5B, 0, 21),
    E(Op::kPvMaxB, Fmt::kR, 0x5B, 0, 22),
    E(Op::kPvMaxH, Fmt::kR, 0x5B, 0, 23),
    E(Op::kPvSraH, Fmt::kR, 0x5B, 0, 24),
    E(Op::kPvDotspB, Fmt::kR, 0x5B, 0, 25),
    E(Op::kPvDotspH, Fmt::kR, 0x5B, 0, 26),
    E(Op::kPvSdotspB, Fmt::kR, 0x5B, 0, 27),
    E(Op::kPvSdotspH, Fmt::kR, 0x5B, 0, 28),
    E(Op::kPvSdotspBMem, Fmt::kR, 0x5B, 0, 29),
    E(Op::kPvSdotspHMem, Fmt::kR, 0x5B, 0, 30),
    E(Op::kVfaddH, Fmt::kR, 0x5B, 0, 40),
    E(Op::kVfsubH, Fmt::kR, 0x5B, 0, 41),
    E(Op::kVfmulH, Fmt::kR, 0x5B, 0, 42),
    E(Op::kVfmacH, Fmt::kR, 0x5B, 0, 43),
    E(Op::kVfdotpexSH, Fmt::kR, 0x5B, 0, 44),
    E(Op::kVfcvtHS, Fmt::kR, 0x5B, 0, 45),
};

}  // namespace

std::span<const EncInfo> encoding_table() { return kTable; }

const EncInfo* lookup(Op op) {
  static const auto by_op = [] {
    std::array<const EncInfo*, static_cast<size_t>(Op::kOpCount)> idx{};
    for (const auto& entry : kTable) {
      idx[static_cast<size_t>(entry.op)] = &entry;
    }
    return idx;
  }();
  const auto i = static_cast<size_t>(op);
  return i < by_op.size() ? by_op[i] : nullptr;
}

}  // namespace detail

namespace {

using detail::EncInfo;
using detail::Fmt;

void check_reg(u8 r, const char* what) {
  HULKV_CHECK(r < 32, std::string("register index out of range: ") + what);
}

void check_imm_signed(i64 imm, unsigned width, const char* what) {
  const i64 lo = -(1ll << (width - 1));
  const i64 hi = (1ll << (width - 1)) - 1;
  HULKV_CHECK(imm >= lo && imm <= hi,
              std::string("immediate out of range for ") + what);
}

}  // namespace

u32 encode(const Instr& in) {
  const EncInfo* e = detail::lookup(in.op);
  HULKV_CHECK(e != nullptr, "op has no encoding");
  check_reg(in.rd, "rd");
  check_reg(in.rs1, "rs1");
  check_reg(in.rs2, "rs2");
  check_reg(in.rs3, "rs3");

  const u32 opc = e->opcode;
  const u32 f3 = e->funct3;
  const u32 f7 = e->funct7;
  const u32 rd = in.rd, rs1 = in.rs1, rs2 = in.rs2, rs3 = in.rs3;
  const i64 imm = in.imm;

  switch (e->fmt) {
    case Fmt::kR:
      return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
             (rd << 7) | opc;
    case Fmt::kRUnary:
      return (f7 << 25) | (static_cast<u32>(e->rs2_fix) << 20) |
             (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
    case Fmt::kR4:
      // funct7 slot = rs3 << 2 | funct2 (FP format).
      return (rs3 << 27) | ((f7 & 3u) << 25) | (rs2 << 20) | (rs1 << 15) |
             (f3 << 12) | (rd << 7) | opc;
    case Fmt::kI:
      check_imm_signed(imm, 12, mnemonic(in.op).data());
      return ((static_cast<u32>(imm) & 0xFFFu) << 20) | (rs1 << 15) |
             (f3 << 12) | (rd << 7) | opc;
    case Fmt::kShamt: {
      const unsigned max_shamt = (opc == 0x13 && f3 != 0) ? 63 : 31;
      HULKV_CHECK(imm >= 0 && imm <= static_cast<i64>(max_shamt),
                  "shift amount out of range");
      // RV64 shifts use a 6-bit shamt; the funct7 high bits shrink to 6.
      return ((f7 >> 1) << 26) | ((static_cast<u32>(imm) & 0x3Fu) << 20) |
             (rs1 << 15) | (f3 << 12) | (rd << 7) | opc;
    }
    case Fmt::kS:
      check_imm_signed(imm, 12, mnemonic(in.op).data());
      return ((static_cast<u32>(imm >> 5) & 0x7Fu) << 25) | (rs2 << 20) |
             (rs1 << 15) | (f3 << 12) | ((static_cast<u32>(imm) & 0x1Fu) << 7) |
             opc;
    case Fmt::kB: {
      check_imm_signed(imm, 13, mnemonic(in.op).data());
      HULKV_CHECK((imm & 1) == 0, "branch offset must be even");
      const u32 v = static_cast<u32>(imm);
      return (((v >> 12) & 1u) << 31) | (((v >> 5) & 0x3Fu) << 25) |
             (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
             (((v >> 1) & 0xFu) << 8) | (((v >> 11) & 1u) << 7) | opc;
    }
    case Fmt::kU:
      HULKV_CHECK((imm & 0xFFF) == 0, "U-type immediate low bits must be 0");
      return (static_cast<u32>(imm) & 0xFFFFF000u) | (rd << 7) | opc;
    case Fmt::kJ: {
      check_imm_signed(imm, 21, mnemonic(in.op).data());
      HULKV_CHECK((imm & 1) == 0, "jal offset must be even");
      const u32 v = static_cast<u32>(imm);
      return (((v >> 20) & 1u) << 31) | (((v >> 1) & 0x3FFu) << 21) |
             (((v >> 11) & 1u) << 20) | (((v >> 12) & 0xFFu) << 12) |
             (rd << 7) | opc;
    }
    case Fmt::kCsr:
      HULKV_CHECK(imm >= 0 && imm <= 0xFFF, "csr address out of range");
      return ((static_cast<u32>(imm) & 0xFFFu) << 20) | (rs1 << 15) |
             (f3 << 12) | (rd << 7) | opc;
    case Fmt::kCsrImm:
      HULKV_CHECK(imm >= 0 && imm <= 0xFFF, "csr address out of range");
      HULKV_CHECK(in.rs1 < 32, "csr uimm out of range");
      return ((static_cast<u32>(imm) & 0xFFFu) << 20) | (rs1 << 15) |
             (f3 << 12) | (rd << 7) | opc;
    case Fmt::kSys:
      return e->word;
  }
  throw SimError("unreachable: unknown format");
}

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kIllegal: return "illegal";
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLb: return "lb";
    case Op::kLh: return "lh";
    case Op::kLw: return "lw";
    case Op::kLbu: return "lbu";
    case Op::kLhu: return "lhu";
    case Op::kLwu: return "lwu";
    case Op::kLd: return "ld";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kSd: return "sd";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kAddiw: return "addiw";
    case Op::kSlliw: return "slliw";
    case Op::kSrliw: return "srliw";
    case Op::kSraiw: return "sraiw";
    case Op::kAddw: return "addw";
    case Op::kSubw: return "subw";
    case Op::kSllw: return "sllw";
    case Op::kSrlw: return "srlw";
    case Op::kSraw: return "sraw";
    case Op::kFence: return "fence";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kWfi: return "wfi";
    case Op::kCsrrw: return "csrrw";
    case Op::kCsrrs: return "csrrs";
    case Op::kCsrrc: return "csrrc";
    case Op::kCsrrwi: return "csrrwi";
    case Op::kCsrrsi: return "csrrsi";
    case Op::kCsrrci: return "csrrci";
    case Op::kMul: return "mul";
    case Op::kMulh: return "mulh";
    case Op::kMulhsu: return "mulhsu";
    case Op::kMulhu: return "mulhu";
    case Op::kDiv: return "div";
    case Op::kDivu: return "divu";
    case Op::kRem: return "rem";
    case Op::kRemu: return "remu";
    case Op::kMulw: return "mulw";
    case Op::kDivw: return "divw";
    case Op::kDivuw: return "divuw";
    case Op::kRemw: return "remw";
    case Op::kRemuw: return "remuw";
    case Op::kFlw: return "flw";
    case Op::kFsw: return "fsw";
    case Op::kFaddS: return "fadd.s";
    case Op::kFsubS: return "fsub.s";
    case Op::kFmulS: return "fmul.s";
    case Op::kFdivS: return "fdiv.s";
    case Op::kFsqrtS: return "fsqrt.s";
    case Op::kFmaddS: return "fmadd.s";
    case Op::kFmsubS: return "fmsub.s";
    case Op::kFsgnjS: return "fsgnj.s";
    case Op::kFsgnjnS: return "fsgnjn.s";
    case Op::kFsgnjxS: return "fsgnjx.s";
    case Op::kFminS: return "fmin.s";
    case Op::kFmaxS: return "fmax.s";
    case Op::kFeqS: return "feq.s";
    case Op::kFltS: return "flt.s";
    case Op::kFleS: return "fle.s";
    case Op::kFcvtWS: return "fcvt.w.s";
    case Op::kFcvtSW: return "fcvt.s.w";
    case Op::kFcvtLS: return "fcvt.l.s";
    case Op::kFcvtSL: return "fcvt.s.l";
    case Op::kFmvXW: return "fmv.x.w";
    case Op::kFmvWX: return "fmv.w.x";
    case Op::kFld: return "fld";
    case Op::kFsd: return "fsd";
    case Op::kFaddD: return "fadd.d";
    case Op::kFsubD: return "fsub.d";
    case Op::kFmulD: return "fmul.d";
    case Op::kFdivD: return "fdiv.d";
    case Op::kFmaddD: return "fmadd.d";
    case Op::kFmsubD: return "fmsub.d";
    case Op::kFsgnjD: return "fsgnj.d";
    case Op::kFsgnjnD: return "fsgnjn.d";
    case Op::kFsgnjxD: return "fsgnjx.d";
    case Op::kFeqD: return "feq.d";
    case Op::kFltD: return "flt.d";
    case Op::kFleD: return "fle.d";
    case Op::kFcvtWD: return "fcvt.w.d";
    case Op::kFcvtDW: return "fcvt.d.w";
    case Op::kFcvtDS: return "fcvt.d.s";
    case Op::kFcvtSD: return "fcvt.s.d";
    case Op::kFcvtLD: return "fcvt.l.d";
    case Op::kFcvtDL: return "fcvt.d.l";
    case Op::kFmvXD: return "fmv.x.d";
    case Op::kFmvDX: return "fmv.d.x";
    case Op::kLpStarti: return "lp.starti";
    case Op::kLpEndi: return "lp.endi";
    case Op::kLpCount: return "lp.count";
    case Op::kLpCounti: return "lp.counti";
    case Op::kLpSetup: return "lp.setup";
    case Op::kPLbPost: return "p.lb";
    case Op::kPLbuPost: return "p.lbu";
    case Op::kPLhPost: return "p.lh";
    case Op::kPLhuPost: return "p.lhu";
    case Op::kPLwPost: return "p.lw";
    case Op::kPSbPost: return "p.sb";
    case Op::kPShPost: return "p.sh";
    case Op::kPSwPost: return "p.sw";
    case Op::kPMac: return "p.mac";
    case Op::kPMsu: return "p.msu";
    case Op::kPAbs: return "p.abs";
    case Op::kPMin: return "p.min";
    case Op::kPMax: return "p.max";
    case Op::kPClip: return "p.clip";
    case Op::kPExths: return "p.exths";
    case Op::kPExthz: return "p.exthz";
    case Op::kPExtbs: return "p.extbs";
    case Op::kPExtbz: return "p.extbz";
    case Op::kPvAddB: return "pv.add.b";
    case Op::kPvAddH: return "pv.add.h";
    case Op::kPvSubB: return "pv.sub.b";
    case Op::kPvSubH: return "pv.sub.h";
    case Op::kPvMinB: return "pv.min.b";
    case Op::kPvMinH: return "pv.min.h";
    case Op::kPvMaxB: return "pv.max.b";
    case Op::kPvMaxH: return "pv.max.h";
    case Op::kPvSraH: return "pv.sra.h";
    case Op::kPvDotspB: return "pv.dotsp.b";
    case Op::kPvDotspH: return "pv.dotsp.h";
    case Op::kPvSdotspB: return "pv.sdotsp.b";
    case Op::kPvSdotspH: return "pv.sdotsp.h";
    case Op::kPvSdotspBMem: return "pv.sdotsp.b.ld";
    case Op::kPvSdotspHMem: return "pv.sdotsp.h.ld";
    case Op::kVfaddH: return "vfadd.h";
    case Op::kVfsubH: return "vfsub.h";
    case Op::kVfmulH: return "vfmul.h";
    case Op::kVfmacH: return "vfmac.h";
    case Op::kVfdotpexSH: return "vfdotpex.s.h";
    case Op::kVfcvtHS: return "vfcvt.h.s";
    case Op::kOpCount: break;
  }
  return "?";
}

bool is_load(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
    case Op::kLwu:
    case Op::kLd:
    case Op::kFlw:
    case Op::kFld:
    case Op::kPLbPost:
    case Op::kPLbuPost:
    case Op::kPLhPost:
    case Op::kPLhuPost:
    case Op::kPLwPost:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  switch (op) {
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
    case Op::kSd:
    case Op::kFsw:
    case Op::kFsd:
    case Op::kPSbPost:
    case Op::kPShPost:
    case Op::kPSwPost:
      return true;
    default:
      return false;
  }
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_fp(Op op) {
  const auto v = static_cast<u16>(op);
  return (v >= static_cast<u16>(Op::kFlw) &&
          v <= static_cast<u16>(Op::kFmvDX)) ||
         is_simd_fp(op);
}

bool is_simd_int(Op op) {
  const auto v = static_cast<u16>(op);
  return v >= static_cast<u16>(Op::kPvAddB) &&
         v <= static_cast<u16>(Op::kPvSdotspHMem);
}

bool is_simd_fp(Op op) {
  const auto v = static_cast<u16>(op);
  return v >= static_cast<u16>(Op::kVfaddH) &&
         v <= static_cast<u16>(Op::kVfcvtHS);
}

bool is_mac(Op op) {
  switch (op) {
    case Op::kPMac:
    case Op::kPMsu:
    case Op::kPvDotspB:
    case Op::kPvDotspH:
    case Op::kPvSdotspB:
    case Op::kPvSdotspH:
    case Op::kPvSdotspBMem:
    case Op::kPvSdotspHMem:
    case Op::kVfmacH:
    case Op::kVfdotpexSH:
    case Op::kFmaddS:
    case Op::kFmsubS:
    case Op::kFmaddD:
    case Op::kFmsubD:
      return true;
    default:
      return false;
  }
}

unsigned access_size(Op op) {
  switch (op) {
    case Op::kLb:
    case Op::kLbu:
    case Op::kSb:
    case Op::kPLbPost:
    case Op::kPLbuPost:
    case Op::kPSbPost:
      return 1;
    case Op::kLh:
    case Op::kLhu:
    case Op::kSh:
    case Op::kPLhPost:
    case Op::kPLhuPost:
    case Op::kPShPost:
      return 2;
    case Op::kLw:
    case Op::kLwu:
    case Op::kSw:
    case Op::kFlw:
    case Op::kFsw:
    case Op::kPLwPost:
    case Op::kPSwPost:
      return 4;
    case Op::kLd:
    case Op::kSd:
    case Op::kFld:
    case Op::kFsd:
      return 8;
    default:
      return 0;
  }
}

}  // namespace hulkv::isa
