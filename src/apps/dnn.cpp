// dnn.hpp is header-only; this translation unit exists so the module has
// a home in the library and a place for future out-of-line helpers.
#include "apps/dnn.hpp"
