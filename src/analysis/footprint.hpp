// Memory-footprint representation for the dataflow passes: a small,
// normalised set of byte-address ranges an instruction / block /
// function may touch. Built from the interval domain's effective
// addresses, so a bounded base register yields a bounded footprint even
// when the exact address is unknown. An access whose address interval
// is top makes the owning footprint `unbounded` — conservative "may
// touch anything".
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hulkv::analysis {

/// Half-open byte range [lo, hi).
struct AddrRange {
  Addr lo = 0;
  Addr hi = 0;

  bool operator==(const AddrRange&) const = default;
};

class RangeSet {
 public:
  /// Ranges kept before coalescing into a single hull; a footprint is a
  /// summary, not a precise region list, so a small cap is enough to
  /// separate e.g. the TCDM argument block from a DRAM buffer.
  static constexpr size_t kMaxRanges = 8;

  /// Add [lo, hi); merges with overlapping/adjacent ranges and, above
  /// kMaxRanges, coalesces the two closest ranges into their hull.
  void add(Addr lo, Addr hi);
  /// Mark the footprint unknown (absorbs every range).
  void set_unbounded() { unbounded_ = true; }
  /// Union with another footprint.
  void merge(const RangeSet& other);

  bool unbounded() const { return unbounded_; }
  bool empty() const { return !unbounded_ && ranges_.empty(); }
  const std::vector<AddrRange>& ranges() const { return ranges_; }

  /// Every possibly-touched byte lies in [lo, hi). False when
  /// unbounded (nothing is provable then) or empty-by-vacuity is fine:
  /// an empty footprint is contained in any window.
  bool within(Addr lo, Addr hi) const;

  /// "[0x10000000,0x10000100) [0x1c000000,0x1c000040)" or "unbounded".
  std::string to_string() const;

 private:
  std::vector<AddrRange> ranges_;  // sorted by lo, disjoint, non-adjacent
  bool unbounded_ = false;
};

}  // namespace hulkv::analysis
