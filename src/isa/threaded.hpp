// Threaded-code execution tier (DESIGN.md §15).
//
// The interpreter tier dispatches a decoded block with a switch over
// `Op` per retired instruction; this tier lowers each `DecodedBlock`
// once into *threaded code*: a flat array of pre-resolved handler
// pointers with the operands already unpacked into a packed
// immediate/register-index form and the instruction's *static* cycle
// cost (issue + fixed functional-unit latency) precomputed. The hot
// loop then does no opcode switch, no field decode and no
// per-instruction cache probe — just an indirect call per instruction.
//
// The lowering is core-agnostic: each core supplies a `HandlerResolver`
// mapping an `Op` to its handler (or null, which marks the instruction
// as a deopt point — the dispatch loop falls back to the interpreter at
// its exact pc). Timing neutrality is a hard contract: a handler
// performs every cycle-accounting side effect of the corresponding
// interpreter case in the same order, so interp and threaded runs are
// bit-identical (enforced by the differential CI gate and
// determinism_test).
#pragma once

#include <string>
#include <vector>

#include "isa/instr.hpp"

namespace hulkv::report {
struct BenchOptions;
}  // namespace hulkv::report

namespace hulkv::isa {

struct DecodedBlock;

/// Which dispatch loop a core runs. The threaded tier self-deoptimizes
/// to the interpreter when the cycle profiler is attached or tracing is
/// enabled (attribution/event order must stay per-instruction exact).
enum class ExecTier : u8 { kInterp, kThreaded };

/// "interp" / "threaded" -> tier; throws SimError on anything else.
ExecTier parse_tier(const std::string& name);
const char* tier_name(ExecTier tier);

/// Process-wide default applied to cores at construction (benches set
/// it from --tier before building their SoCs); per-core override via
/// Cva6Core::set_tier / PmcaCore::set_tier.
void set_default_tier(ExecTier tier);
ExecTier default_tier();

/// Apply a bench command line's --tier (no-op when the flag is absent).
void configure_tier(const report::BenchOptions& options);

namespace threaded {

// ThreadedInstr::flags bits. Line flags mark where the interpreter's
// per-line fetch timing can fire: the block's first instruction may
// land anywhere in a fetch line (dynamic compare against the core's
// current line), while a later instruction enters a new line exactly
// when its pc is line-aligned — and the line register provably differs
// there (lines only grow within a straight-line run), so the access is
// unconditional. Everything else provably stays in the current line and
// skips the check entirely.
inline constexpr u16 kFlagLineCheck = 1u << 0;  // block entry: compare
inline constexpr u16 kFlagLineEntry = 1u << 1;  // static line crossing
/// Execute via the interpreter (trap/envcall ops and ops the core has
/// no handler for). Deopt ops all end their block (BlockCache contract)
/// so a deopt is always block-terminal.
inline constexpr u16 kFlagDeopt = 1u << 2;
/// May touch cross-core shared state (DecodedBlock::shared_mask bit,
/// post fact-provider widening) — the cluster's run-ahead horizon check.
inline constexpr u16 kFlagShared = 1u << 3;

/// Generic handler pointer; each core's dispatch loop casts it back to
/// its own `void(Core&, const ThreadedInstr&)` signature.
using AnyFn = void (*)();

/// One lowered instruction: pre-resolved handler, unpacked operands,
/// the instruction's own address (control handlers compute targets as
/// `pc + imm`; deopt re-enters the interpreter at `pc`), and the static
/// cycles the instruction always pays (1-cycle issue + fixed latency).
/// Dynamic cycle costs (cache misses, bank conflicts, taken-branch
/// penalties) stay inside the handler, exactly like the interpreter.
struct ThreadedInstr {
  AnyFn fn = nullptr;
  u8 rd = 0;
  u8 rs1 = 0;
  u8 rs2 = 0;
  u8 rs3 = 0;
  u16 flags = 0;
  u16 reserved = 0;
  i32 imm = 0;
  u32 cyc = 1;
  Addr pc = 0;
};
// Two instructions per cache line: the dispatch loops stream through
// the array, so the entry size is part of the tier's perf contract
// (scripts/lint.sh greps for this assert staying put).
static_assert(sizeof(ThreadedInstr) == 32, "ThreadedInstr grew past 32B");

/// Threaded form of one DecodedBlock, lowered lazily on first threaded
/// dispatch and tagged with the DecodedBlock generation it was lowered
/// from: a block-cache invalidation bumps the generation, the stale
/// lowering is detected by mismatch and redone in place (the
/// deopt-on-invalidation round trip pinned by threaded_test).
struct ThreadedBlock {
  u64 generation = 0;  // 0 = never lowered (generations start at 1)
  /// Last instruction is a handled branch/jump: its handler sets the
  /// core's pc. Otherwise control falls through to `start + 4 * n`.
  bool control_tail = false;
  std::vector<ThreadedInstr> code;
};

/// What a core's resolver returns for one Op: the handler and the
/// static cycles (1 + fixed latency). A null fn marks the op as a deopt
/// point.
struct HandlerInfo {
  AnyFn fn = nullptr;
  u32 static_cycles = 1;
};

/// Per-core Op -> handler mapping; `ctx` is the core's config (the
/// fixed latencies live there).
using HandlerResolver = HandlerInfo (*)(Op op, const void* ctx);

/// Lower `block` into `out` for a core with `line_bytes`-sized fetch
/// lines. `want_shared` controls kFlagShared emission (the host has no
/// run-ahead horizon and skips the bit so its flag word stays zero on
/// the fast path).
void lower(const DecodedBlock& block, u32 line_bytes, bool want_shared,
           HandlerResolver resolve, const void* ctx, ThreadedBlock* out);

}  // namespace threaded
}  // namespace hulkv::isa
