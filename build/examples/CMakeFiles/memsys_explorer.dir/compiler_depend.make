# Empty compiler generated dependencies file for memsys_explorer.
# This may be replaced when dependencies are built.
