#include "runtime/offload.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "profile/profile.hpp"
#include "trace/trace.hpp"

namespace hulkv::runtime {

namespace {
/// Mailbox event propagation + host wake-up from WFI.
constexpr Cycles kMailboxLatency = 6;
/// Stack reservation at the top of TCDM (1 kB per core, cluster.cpp).
constexpr u64 kStackReserve = 8 * 1024;
}  // namespace

OffloadRuntime::OffloadRuntime(core::HulkVSoc* soc)
    : soc_(soc),
      facts_registry_(std::make_shared<analysis::FactsRegistry>()),
      shared_(core::layout::kSharedBase, core::layout::kSharedSize),
      l2_arena_(mem::map::kL2Base, mem::map::kL2Size),
      tcdm_arena_(mem::map::kTcdmBase + kArgBlockBytes,
                  soc->cluster().tcdm().storage().size() - kArgBlockBytes -
                      kStackReserve) {
  HULKV_CHECK(soc != nullptr, "runtime needs a SoC");
  // Every PMCA core consults the registry at block-translate time;
  // kernels register their facts as they are lazy-loaded into L2.
  auto& cluster = soc_->cluster();
  for (u32 c = 0; c < cluster.num_cores(); ++c) {
    analysis::attach_registry(cluster.core(c).decode_blocks(),
                              facts_registry_);
  }
}

analysis::Analysis OffloadRuntime::analyze_kernel_program(
    const std::vector<u32>& words) const {
  analysis::Options options;
  options.base = 0;  // kernels are assembled position-independent
  options.profile = analysis::IsaProfile::kClusterRv32;
  options.pic = true;
  options.iopmp = &soc_->iopmp();
  options.tcdm_bytes = soc_->cluster().tcdm().storage().size();
  options.policy = analysis_policy_;
  // Cluster::run_kernel entry convention: a0 points at the argument
  // block, sp at this core's 1 kB stack slice below the TCDM top.
  const u64 tcdm_top = mem::map::kTcdmBase + options.tcdm_bytes;
  const u32 num_cores = soc_->cluster().num_cores();
  options.entry_values.emplace_back(
      isa::reg::a0, analysis::Interval::constant(kArgBlockBase, 32));
  options.entry_values.emplace_back(
      isa::reg::sp,
      analysis::Interval::range(
          tcdm_top - u64{num_cores > 0 ? num_cores - 1 : 0} * 1024,
          tcdm_top));
  return analysis::analyze_program(words, options);
}

analysis::Report OffloadRuntime::analyze_kernel(
    const std::vector<u32>& words) const {
  return analyze_kernel_program(words).report;
}

KernelHandle OffloadRuntime::register_kernel(
    const std::string& name, const std::vector<u32>& words,
    std::vector<std::pair<std::string, u64>> symbols) {
  HULKV_CHECK(!words.empty(), "registering an empty kernel");
  std::shared_ptr<const analysis::FactsTable> facts;
  if (analysis_mode_ != AnalysisMode::kOff) {
    analysis::Analysis result = analyze_kernel_program(words);
    analysis::log_report(result.report, name);
    if (analysis_mode_ == AnalysisMode::kReject && !result.report.ok()) {
      throw SimError("kernel '" + name + "' rejected by static analysis:\n" +
                     result.report.to_string());
    }
    facts = std::move(result.facts);
  }
  Image image;
  image.name = name;
  image.facts = std::move(facts);
  image.bytes = static_cast<u32>(words.size() * 4);
  image.symbols = std::move(symbols);
  image.dram_addr = shared_.arena().alloc(image.bytes, 64);
  soc_->write_mem(image.dram_addr, words.data(), image.bytes);
  images_.push_back(image);
  names_.push_back(name);
  log(LogLevel::kDebug, "offload", "registered kernel '", name, "' (",
      image.bytes, " B)");
  return {static_cast<u32>(images_.size() - 1)};
}

Cycles OffloadRuntime::load_code(Image& image) {
  auto& host = soc_->host();
  const Cycles start = host.now();
  image.l2_addr = l2_arena_.alloc(image.bytes, 64);

  // Driver-side copy external memory -> L2SPM, 64-byte chunks over the
  // AXI crossbar (this is the lazy load of section VI-A: for short
  // kernels it dominates the offload).
  u8 buffer[64];
  Cycles t = start;
  for (u32 off = 0; off < image.bytes; off += 64) {
    const u32 n = std::min<u32>(64, image.bytes - off);
    t = soc_->bus().read(t, image.dram_addr + off, buffer, n,
                         mem::Master::kHost);
    t = soc_->bus().write(t, image.l2_addr + off, buffer, n,
                          mem::Master::kHost);
  }
  host.advance_to(t);
  soc_->cluster().on_code_loaded(image.l2_addr, image.bytes);
  // The analysis facts follow the image to its L2 home; the per-core
  // decode caches pick them up on the next (post-invalidate) translate.
  if (image.facts != nullptr) {
    facts_registry_->register_image(image.l2_addr, image.facts);
  }
  // Tell the profiler where this image now lives; re-registration after
  // an evict_all() displaces whatever previously occupied the range.
  profile::session().register_symbols(image.l2_addr, image.bytes,
                                      image.name, image.symbols);
  if (trace::enabled()) {
    auto& sink = trace::sink();
    sink.complete(sink.resolve(trace_track_, "offload"),
                  trace::Ev::kCodeLoad, start, t, image.bytes);
  }
  log(LogLevel::kDebug, "offload", "lazy-loaded '", image.name, "' to L2 in ",
      t - start, " cycles");
  return t - start;
}

void OffloadRuntime::preload(KernelHandle kernel) {
  HULKV_CHECK(kernel.index < images_.size(), "bad kernel handle");
  Image& image = images_[kernel.index];
  if (image.l2_addr == 0) load_code(image);
}

void OffloadRuntime::evict_all() {
  for (Image& image : images_) image.l2_addr = 0;
  l2_arena_.reset();
  facts_registry_->clear();
}

OffloadRuntime::OffloadResult OffloadRuntime::offload(
    KernelHandle kernel, std::span<const u32> args, u32 team_size) {
  HULKV_CHECK(kernel.index < images_.size(), "bad kernel handle");
  HULKV_CHECK(args.size() * 4 <= kArgBlockBytes, "argument block overflow");
  Image& image = images_[kernel.index];
  auto& host = soc_->host();

  OffloadResult result;
  const Cycles t0 = host.now();
  const u64 claimed_before = profile::claimed();

  // 1. Lazy code load.
  if (image.l2_addr == 0) result.code_load = load_code(image);

  // 2. Argument marshalling into the TCDM argument block.
  const Cycles marshal_start = host.now();
  Cycles t = marshal_start;
  for (size_t i = 0; i < args.size(); ++i) {
    t = soc_->bus().write(t, kArgBlockBase + 4 * i, &args[i], 4,
                          mem::Master::kHost);
  }
  if (trace::enabled() && t > marshal_start) {
    auto& sink = trace::sink();
    sink.complete(sink.resolve(trace_track_, "offload"), trace::Ev::kMarshal,
                  marshal_start, t, args.size() * 4);
  }

  // 3. Doorbell: post the kernel id to the cluster mailbox.
  const u32 doorbell = kernel.index;
  t = soc_->bus().write(t, core::apbmap::kMailboxBase + core::Mailbox::kH2cWrite,
                        &doorbell, 4, mem::Master::kHost);
  host.advance_to(t);
  (void)soc_->mailbox().pop_cluster();  // cluster runtime consumes it
  if (trace::enabled()) {
    auto& sink = trace::sink();
    sink.instant(sink.resolve(trace_track_, "offload"), trace::Ev::kMailbox,
                 t, doorbell);
  }

  // 4. Event-unit dispatch + execution on the 8 cores.
  const auto kres = soc_->cluster().run_kernel(
      t, image.l2_addr, static_cast<u32>(kArgBlockBase), team_size);
  result.kernel = kres.cycles;
  result.cluster_instret = kres.instret;

  // 5. Completion: mailbox back to the host (PLIC wakes it from WFI).
  soc_->mailbox().post_to_host(0xD07E);  // "done" token
  host.advance_to(kres.finish + kMailboxLatency);
  u32 token = 0;
  host.advance_to(soc_->bus().read(
      host.now(), core::apbmap::kMailboxBase + core::Mailbox::kC2hRead,
      &token, 4, mem::Master::kHost));
  soc_->plic().clear(core::kMailboxIrqSource);

  result.total = host.now() - t0;
  result.handshake = result.total - result.code_load - result.kernel;
  // When invoked from a guest ecall, the whole offload sits inside the
  // host's instruction bracket. Timing models claimed their shares into
  // it above (code-load/marshalling bus traffic); the remainder — the
  // cluster run and the handshake — is time the host spent waiting on
  // the offload. (Cluster-core brackets use their own scratch and do
  // not claim here.)
  profile::add(profile::Reason::kOffloadWait,
               profile::own_share(result.total,
                                  profile::claimed() - claimed_before));
  if (trace::enabled()) {
    auto& sink = trace::sink();
    const u32 track = sink.resolve(trace_track_, "offload");
    sink.complete(track, trace::Ev::kKernel, kres.start, kres.finish,
                  kernel.index);
    sink.instant(track, trace::Ev::kMailbox, kres.finish + kMailboxLatency,
                 0xD07E);
    sink.complete(track, trace::Ev::kOffload, t0, host.now(), kernel.index);
  }
  return result;
}

void OffloadRuntime::install_host_syscalls() {
  soc_->host().set_syscall_handler(
      [this](host::Cva6Core& core) -> host::Cva6Core::SyscallAction {
        const u64 num = core.reg(isa::reg::a7);
        if (num == kSyscallOffload) {
          const u32 index = static_cast<u32>(core.reg(isa::reg::a0));
          const Addr arg_ptr = core.reg(isa::reg::a1);
          const u64 nargs = core.reg(isa::reg::a2);
          std::vector<u32> args(nargs);
          if (nargs > 0) {
            soc_->read_mem(arg_ptr, args.data(), nargs * 4);
          }
          const OffloadResult r = offload({index}, args);
          core.set_reg(isa::reg::a0, r.total);
          return host::Cva6Core::SyscallAction::kContinue;
        }
        if (num == kSyscallOffload + 1) {  // hulk_malloc(a0 = bytes)
          core.set_reg(isa::reg::a0, hulk_malloc(core.reg(isa::reg::a0)));
          return host::Cva6Core::SyscallAction::kContinue;
        }
        throw SimError("unknown host syscall a7=" + std::to_string(num));
      });

  // WFI during offload: the host sleeps until the mailbox IRQ; in the
  // direct-call model the clock has already advanced past the wake-up, so
  // a pending message wakes immediately.
  soc_->host().set_wfi_handler([](Cycles now) { return now + 1; });
}

// ---- checkpoint / restore ----------------------------------------------

void OffloadRuntime::save(std::ostream& os) {
  soc_->save(os, [this](snapshot::Writer& writer) {
    writer.section(snapshot::kRuntime,
                   [this](snapshot::Archive& ar) { serialize(ar); });
  });
}

void OffloadRuntime::restore(std::istream& is) {
  soc_->restore(is, [this](const snapshot::Reader& reader) {
    reader.section(snapshot::kRuntime,
                   [this](snapshot::Archive& ar) { serialize(ar); });
  });
}

u64 OffloadRuntime::state_digest() {
  snapshot::Archive ar = snapshot::Archive::hasher();
  u64 soc_digest = soc_->state_digest();
  ar.pod(soc_digest);
  serialize(ar);
  return ar.hash();
}

void OffloadRuntime::serialize(snapshot::Archive& ar) {
  shared_.serialize(ar);
  l2_arena_.serialize(ar);
  tcdm_arena_.serialize(ar);
  u64 count = images_.size();
  ar.pod(count);
  if (ar.loading()) {
    images_.resize(count);
    names_.resize(count);
  }
  for (u64 i = 0; i < count; ++i) {
    Image& image = images_[i];
    ar.str(image.name);
    ar.pod(image.dram_addr);
    ar.pod(image.l2_addr);
    ar.pod(image.bytes);
    if (ar.loading()) names_[i] = image.name;
  }
  if (ar.loading()) {
    // Rebuild the facts registry against the restored L2 placement.
    // Tables survive only for images this runtime instance analyzed
    // (facts are host-side metadata); anything else runs unproven.
    facts_registry_->clear();
    for (const Image& image : images_) {
      if (image.l2_addr != 0 && image.facts != nullptr) {
        facts_registry_->register_image(image.l2_addr, image.facts);
      }
    }
  }
}

void OffloadRuntime::reset() {
  shared_.reset();
  l2_arena_.reset();
  tcdm_arena_.reset();
  images_.clear();
  names_.clear();
  facts_registry_->clear();
}

}  // namespace hulkv::runtime
