#include "common/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <string_view>

namespace hulkv::cli {

Parser::Parser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

Parser& Parser::add(Option opt) {
  options_.push_back(std::move(opt));
  return *this;
}

Parser& Parser::add_string(const std::string& flag, std::string* out,
                           std::string help) {
  Option o;
  o.flag = flag;
  o.help = std::move(help);
  o.kind = Kind::kString;
  o.str = out;
  return add(std::move(o));
}

Parser& Parser::add_u32(const std::string& flag, u32* out,
                        std::string help) {
  Option o;
  o.flag = flag;
  o.help = std::move(help);
  o.kind = Kind::kU32;
  o.u32v = out;
  return add(std::move(o));
}

Parser& Parser::add_u64(const std::string& flag, u64* out,
                        std::string help) {
  Option o;
  o.flag = flag;
  o.help = std::move(help);
  o.kind = Kind::kU64;
  o.u64v = out;
  return add(std::move(o));
}

Parser& Parser::add_double(const std::string& flag, double* out,
                           std::string help) {
  Option o;
  o.flag = flag;
  o.help = std::move(help);
  o.kind = Kind::kDouble;
  o.dbl = out;
  return add(std::move(o));
}

Parser& Parser::add_flag(const std::string& flag, bool* out,
                         std::string help) {
  Option o;
  o.flag = flag;
  o.help = std::move(help);
  o.kind = Kind::kBool;
  o.boolean = out;
  return add(std::move(o));
}

Parser& Parser::add_optional_value(const std::string& flag, bool* present,
                                   std::string* value, std::string help) {
  Option o;
  o.flag = flag;
  o.help = std::move(help);
  o.kind = Kind::kOptional;
  o.boolean = present;
  o.str = value;
  return add(std::move(o));
}

bool Parser::apply_value(const Option& opt, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  switch (opt.kind) {
    case Kind::kString:
    case Kind::kOptional:
      *opt.str = value;
      return true;
    case Kind::kU32: {
      const unsigned long v = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || errno != 0 || v > ~u32{0}) {
        error_ = program_ + ": " + opt.flag +
                 " expects an unsigned integer, got \"" + value + "\"";
        return false;
      }
      *opt.u32v = static_cast<u32>(v);
      return true;
    }
    case Kind::kU64: {
      const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || errno != 0) {
        error_ = program_ + ": " + opt.flag +
                 " expects an unsigned integer, got \"" + value + "\"";
        return false;
      }
      *opt.u64v = v;
      return true;
    }
    case Kind::kDouble: {
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || errno != 0) {
        error_ = program_ + ": " + opt.flag + " expects a number, got \"" +
                 value + "\"";
        return false;
      }
      *opt.dbl = v;
      return true;
    }
    case Kind::kBool:
      break;  // unreachable: presence flags never carry a value
  }
  error_ = program_ + ": " + opt.flag + " does not take a value";
  return false;
}

bool Parser::parse(int argc, char** argv, OnUnknown policy) {
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const Option* matched = nullptr;
    bool has_inline = false;
    std::string inline_value;
    for (const Option& opt : options_) {
      if (arg == opt.flag) {
        matched = &opt;
        break;
      }
      // --flag=value spelling (an empty value after '=' is legal).
      if (arg.size() > opt.flag.size() &&
          arg.substr(0, opt.flag.size()) == opt.flag &&
          arg[opt.flag.size()] == '=') {
        matched = &opt;
        has_inline = true;
        inline_value = std::string(arg.substr(opt.flag.size() + 1));
        break;
      }
    }
    if (matched == nullptr) {
      if (policy == OnUnknown::kError) {
        error_ = program_ + ": unknown flag \"" + std::string(arg) + "\"";
        return false;
      }
      continue;  // wrapped tool's flag (e.g. google-benchmark)
    }
    switch (matched->kind) {
      case Kind::kBool:
        if (has_inline) {
          error_ = program_ + ": " + matched->flag + " does not take a value";
          return false;
        }
        *matched->boolean = true;
        break;
      case Kind::kOptional:
        // Bare form must not consume the next argument (a bench's
        // `--profile --json out.json` would otherwise eat --json).
        *matched->boolean = true;
        if (has_inline && !apply_value(*matched, inline_value)) return false;
        break;
      default:
        if (!has_inline) {
          if (i + 1 >= argc) {
            // Historical bench behaviour: a trailing value-less flag is
            // accepted and leaves the default in place.
            if (policy == OnUnknown::kIgnore) break;
            error_ = program_ + ": " + matched->flag + " expects a value";
            return false;
          }
          inline_value = argv[++i];
        }
        if (!apply_value(*matched, inline_value)) return false;
        break;
    }
  }
  return true;
}

std::string Parser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [flags]\n";
  if (!summary_.empty()) os << summary_ << "\n";
  size_t width = 0;
  for (const Option& opt : options_) {
    size_t w = opt.flag.size();
    if (opt.kind == Kind::kOptional) w += 8;           // "[=VALUE]"
    else if (opt.kind != Kind::kBool) w += 6;          // " VALUE"
    width = std::max(width, w);
  }
  for (const Option& opt : options_) {
    std::string spelled = opt.flag;
    if (opt.kind == Kind::kOptional) spelled += "[=VALUE]";
    else if (opt.kind != Kind::kBool) spelled += " VALUE";
    os << "  " << spelled
       << std::string(width + 2 - spelled.size(), ' ') << opt.help << "\n";
  }
  return os.str();
}

}  // namespace hulkv::cli
