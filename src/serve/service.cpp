#include "serve/service.hpp"

#include "telemetry/telemetry.hpp"

namespace hulkv::serve {

Service::PointResult Service::run_point(const PointParams& point,
                                        bool no_cache,
                                        const CancelFn& cancelled,
                                        obs::StageClock* clock) {
  const CacheKey key = point_cache_key(point);
  PointResult result;
  result.row.workload = point.workload;
  result.row.mem_kind = point.mem_kind;
  result.row.llc = point.llc;

  if (!no_cache) {
    const u64 t0 = clock != nullptr ? telemetry::now_ns() : 0;
    const bool hit = cache_.lookup(key, &result.row);
    if (clock != nullptr) {
      clock->cache_lookup_ns += telemetry::now_ns() - t0;
      clock->cache_hit = hit;
    }
    if (hit) {
      result.cache_hit = true;
      return result;
    }
  }

  const telemetry::Span span(telemetry::SpanPhase::kServePoint);
  const u64 fork0 = clock != nullptr ? telemetry::now_ns() : 0;
  const WarmPool::Entry& entry = warm_pool_.get(point);
  if (telemetry::enabled()) {
    telemetry::registry().note_config_fingerprint(key.config_fingerprint);
    telemetry::registry().note_program_digest(entry.program.name,
                                              key.program_digest);
  }
  core::HulkVSoc soc(entry.config);
  entry.snapshot.restore_into(soc);
  kernels::prepare_host_program(soc, entry.program.words, entry.args);
  const u64 exec0 = clock != nullptr ? telemetry::now_ns() : 0;
  if (clock != nullptr) clock->warm_fork_ns += exec0 - fork0;

  // Chunked timed run: identical retirement to one unbounded run, with
  // a cancellation poll between segments.
  u64 cycles = 0, instret = 0;
  u32 chunks = 0;
  for (;;) {
    const host::Cva6Core::RunResult seg =
        soc.host().run(kRunChunkInstructions);
    cycles += seg.cycles;
    instret += seg.instret;
    ++chunks;
    if (seg.exited) {
      result.row.cycles = cycles;
      result.row.instret = instret;
      result.row.exit_code = seg.exit_code;
      break;
    }
    if (cancelled) {
      const Status aborted = cancelled();
      if (aborted != Status::kOk) {
        if (clock != nullptr) {
          clock->execute_ns += telemetry::now_ns() - exec0;
          clock->chunks += chunks;
        }
        result.status = aborted;
        return result;
      }
    }
  }
  if (clock != nullptr) {
    clock->execute_ns += telemetry::now_ns() - exec0;
    clock->chunks += chunks;
  }

  points_simulated_.fetch_add(1);
  if (!no_cache) cache_.insert(key, result.row);
  return result;
}

}  // namespace hulkv::serve
