// Hardware mailbox between the host domain and the PMCA (paper section
// III-C: "Efficient communication between cluster and host domain is
// implemented through a dedicated hardware mailbox").
//
// Two word FIFOs (host->cluster and cluster->host) behind an MMIO window.
// A cluster->host post raises a PLIC source so the host can sleep in WFI
// during an offload. Register map (byte offsets):
//   0x00  H2C write   (host pushes)      0x04  H2C read   (cluster pops)
//   0x08  C2H write   (cluster pushes)   0x0C  C2H read   (host pops)
//   0x10  status: bit0 = H2C non-empty, bit1 = C2H non-empty
#pragma once

#include <deque>
#include <functional>

#include "mem/interconnect.hpp"

namespace hulkv::core {

class Mailbox final : public mem::MmioDevice {
 public:
  static constexpr Addr kH2cWrite = 0x00;
  static constexpr Addr kH2cRead = 0x04;
  static constexpr Addr kC2hWrite = 0x08;
  static constexpr Addr kC2hRead = 0x0C;
  static constexpr Addr kStatus = 0x10;

  /// `irq_raise` is invoked on every cluster->host post (wired to the
  /// PLIC by the SoC).
  explicit Mailbox(std::function<void()> irq_raise = nullptr)
      : irq_raise_(std::move(irq_raise)) {}

  u64 mmio_read(Addr offset, u32 size) override;
  void mmio_write(Addr offset, u64 value, u32 size) override;

  // Direct API used by the runtime (same semantics as the registers).
  void post_to_cluster(u32 word) { h2c_.push_back(word); }
  void post_to_host(u32 word);
  bool host_message_pending() const { return !c2h_.empty(); }
  bool cluster_message_pending() const { return !h2c_.empty(); }
  u32 pop_host();     // pop C2H (host side)
  u32 pop_cluster();  // pop H2C (cluster side)

  /// Snapshot traversal (both FIFOs; the IRQ wiring is construction-time).
  void serialize(snapshot::Archive& ar);

  /// Freshly-constructed state (drain both FIFOs).
  void reset() {
    h2c_.clear();
    c2h_.clear();
  }

 private:
  std::deque<u32> h2c_;
  std::deque<u32> c2h_;
  std::function<void()> irq_raise_;
};

}  // namespace hulkv::core
