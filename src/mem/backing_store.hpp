// Sparse functional memory. Holds the *contents* of the main DRAM (up to
// 512 MB of HyperRAM address space) without allocating it eagerly: pages
// are materialised on first touch. Scratchpads (L2SPM, TCDM) use flat
// vectors instead; this class is only for the large external-memory
// region.
//
// Hot-path note: every host load/store and every DMA beat lands here, so
// the page lookup sits on the simulator's critical path. A small
// direct-mapped page-pointer cache (page number -> data pointer) makes
// the common case — repeated access to a recently-touched page — a mask,
// a compare and a memcpy, skipping the `unordered_map` probe entirely.
// Page data pointers are stable (vector buffers never move after
// materialisation; rehashing moves the vector objects, not their heap
// storage), so cached pointers stay valid until `clear()`.
#pragma once

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace hulkv::snapshot {
class Archive;
}  // namespace hulkv::snapshot

namespace hulkv::mem {

class BackingStore {
 public:
  static constexpr u64 kPageBytes = 4096;
  /// Direct-mapped translation slots (power of two). 64 slots cover the
  /// working set of a multi-accessor run (host code + data pages, DMA
  /// source/destination streams) with near-perfect hit rates.
  static constexpr u64 kPtrCacheSlots = 64;

  /// Read `len` bytes at `addr` into `dst`. Unwritten memory reads as 0.
  void read(Addr addr, void* dst, u64 len) const {
    const u64 in_page = addr % kPageBytes;
    if (in_page + len <= kPageBytes) {  // common case: one page
      const u64 page = addr / kPageBytes;
      const Slot& slot = slots_[page % kPtrCacheSlots];
      if (slot.page == page) {
        ++ptr_cache_hits_;
        if (slot.data != nullptr) {
          std::memcpy(dst, slot.data + in_page, len);
        } else {
          std::memset(dst, 0, len);  // cached "unmaterialised" page
        }
        return;
      }
    }
    read_slow(addr, dst, len);
  }

  /// Write `len` bytes from `src` at `addr`.
  void write(Addr addr, const void* src, u64 len) {
    const u64 in_page = addr % kPageBytes;
    if (in_page + len <= kPageBytes) {
      const u64 page = addr / kPageBytes;
      Slot& slot = slots_[page % kPtrCacheSlots];
      if (slot.page == page && slot.data != nullptr) {
        ++ptr_cache_hits_;
        std::memcpy(slot.data + in_page, src, len);
        return;
      }
    }
    write_slow(addr, src, len);
  }

  // Typed helpers for tests and loaders.
  template <typename T>
  T load(Addr addr) const {
    T v{};
    read(addr, &v, sizeof(T));
    return v;
  }

  template <typename T>
  void store(Addr addr, T value) {
    write(addr, &value, sizeof(T));
  }

  /// Number of 4 KiB pages currently materialised.
  size_t resident_pages() const { return pages_.size(); }

  /// Drop all contents (and the now-dangling translation slots).
  void clear() {
    pages_.clear();
    slots_.fill(Slot{});
  }

  // Page-pointer-cache effectiveness, for tests and microbenchmarks.
  u64 ptr_cache_hits() const { return ptr_cache_hits_; }
  u64 ptr_cache_misses() const { return ptr_cache_misses_; }

  /// Snapshot traversal: the materialised pages only, sorted by page
  /// number (sparse — untouched memory costs nothing). The translation
  /// slots and hit/miss diagnostics are derived state: on load the
  /// store is clear()ed first, which also drops the stale slots.
  void serialize(snapshot::Archive& ar);

 private:
  /// One translation: page number -> materialised page data (nullptr
  /// when the page is known-unmaterialised, which still short-circuits
  /// zero-fill reads).
  struct Slot {
    u64 page = ~0ull;
    u8* data = nullptr;
  };

  void read_slow(Addr addr, void* dst, u64 len) const;
  void write_slow(Addr addr, const void* src, u64 len);
  std::vector<u8>& page_for(Addr addr);
  const std::vector<u8>* find_page(Addr addr) const;
  void fill_slot(u64 page, u8* data) const {
    Slot& slot = slots_[page % kPtrCacheSlots];
    slot.page = page;
    slot.data = data;
  }

  std::unordered_map<u64, std::vector<u8>> pages_;
  mutable std::array<Slot, kPtrCacheSlots> slots_{};
  mutable u64 ptr_cache_hits_ = 0;
  mutable u64 ptr_cache_misses_ = 0;
};

}  // namespace hulkv::mem
