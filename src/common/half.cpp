#include "common/half.hpp"

#include <bit>
#include <cstring>

namespace hulkv {

u16 float_to_half_bits(float f) {
  const u32 x = std::bit_cast<u32>(f);
  const u32 sign = (x >> 16) & 0x8000u;
  const u32 abs = x & 0x7FFFFFFFu;

  // NaN / Inf.
  if (abs >= 0x7F800000u) {
    if (abs > 0x7F800000u) {
      // Quiet NaN, preserve some payload bits.
      return static_cast<u16>(sign | 0x7E00u | ((abs >> 13) & 0x3FFu));
    }
    return static_cast<u16>(sign | 0x7C00u);
  }

  // Overflow to infinity: anything >= 2^16 * (1 - 2^-11) rounds to inf.
  if (abs >= 0x47800000u) {  // 65536.0f
    return static_cast<u16>(sign | 0x7C00u);
  }

  // Normal range for half: exponent >= -14.
  if (abs >= 0x38800000u) {  // 2^-14
    // Re-bias exponent from 127 to 15 and round mantissa 23 -> 10 bits.
    const u32 mant = abs + 0xC8000000u;  // exponent adjust (-112 << 23)
    const u32 rounded = mant + 0x00000FFFu + ((mant >> 13) & 1u);
    return static_cast<u16>(sign | (rounded >> 13));
  }

  // Subnormal half (or zero): value < 2^-14.
  if (abs < 0x33000001u) {  // below half of the smallest subnormal
    return static_cast<u16>(sign);
  }
  // Shift the implicit-1 mantissa right so the exponent becomes -14,
  // then round-to-nearest-even.
  // result = round(value * 2^24) = round(mant24 >> (126 - exp)).
  const u32 exp = abs >> 23;
  const u32 mant = (abs & 0x7FFFFFu) | 0x800000u;
  const u32 shift = 126 - exp;  // bits to drop from the 24-bit mantissa
  const u32 kept = mant >> shift;
  const u32 rem = mant & ((1u << shift) - 1u);
  const u32 halfway = 1u << (shift - 1);
  u32 result = kept;
  if (rem > halfway || (rem == halfway && (kept & 1u))) {
    result += 1;
  }
  return static_cast<u16>(sign | result);
}

float half_bits_to_float(u16 h) {
  const u32 sign = (static_cast<u32>(h) & 0x8000u) << 16;
  const u32 exp = (h >> 10) & 0x1Fu;
  const u32 mant = h & 0x3FFu;

  u32 out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +/- 0
    } else {
      // Subnormal: normalize.
      unsigned e = 0;
      u32 m = mant;
      while ((m & 0x400u) == 0) {
        m <<= 1;
        ++e;
      }
      m &= 0x3FFu;
      // After e shifts the leading 1 sits at bit 10: value = 2^(-14-e) *
      // (1 + frac), so the float exponent field is 127 - 14 - e = 113 - e.
      out = sign | ((113 - e) << 23) | ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // Inf / NaN
  } else {
    out = sign | ((exp + 112) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

Half Half::from_float(float f) { return from_bits(float_to_half_bits(f)); }

float Half::to_float() const { return half_bits_to_float(bits_); }

}  // namespace hulkv
