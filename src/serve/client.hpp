// Blocking client of the serve daemon: one connection, the framing +
// codec of serve/protocol.hpp. Supports pipelining — send() any number
// of requests before recv()ing; the server answers a connection's
// admission rejections in request order, and every admitted request
// produces exactly one response (matched by request_id, which the
// server echoes verbatim).
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace hulkv::serve {

class Client {
 public:
  /// Connect to a Unix-domain socket. Throws SimError on failure.
  static Client connect_unix(const std::string& path);
  /// Connect to 127.0.0.1:port. Throws SimError on failure.
  static Client connect_tcp(u16 port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  void send(const Request& request);
  /// Receive one response. Returns false on clean EOF (server closed).
  bool recv(Response* response);
  /// send + recv in one step.
  Response call(const Request& request);

  /// Half-close the write side: the server sees EOF, finishes the
  /// connection's in-flight requests, and the read side stays open for
  /// the remaining responses.
  void shutdown_write();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace hulkv::serve
