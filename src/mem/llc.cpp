#include "mem/llc.hpp"

namespace hulkv::mem {

Llc::Llc(const LlcConfig& config, MemTiming* ext_mem)
    : config_(config),
      ext_mem_(ext_mem),
      tags_(config.num_lines, config.num_ways, config.line_bytes()),
      stats_("llc") {
  HULKV_CHECK(ext_mem != nullptr, "LLC needs an external memory model");
}

Cycles Llc::access(Cycles now, Addr addr, u32 bytes, bool is_write) {
  HULKV_CHECK(bytes > 0, "zero-length LLC access");
  // AXI filter: outside the cacheable region, propagate directly.
  if (addr < config_.cacheable_base ||
      addr >= config_.cacheable_base + config_.cacheable_size) {
    stats_.increment("bypass");
    return ext_mem_->access(now, addr, bytes, is_write);
  }

  const u32 line = config_.line_bytes();
  const Addr first = tags_.line_of(addr);
  const Addr last = tags_.line_of(addr + bytes - 1);
  Cycles done = now;
  for (Addr a = first; a <= last; a += line) {
    done = access_line(done, a, is_write);
  }
  return done;
}

Cycles Llc::access_line(Cycles now, Addr line_addr, bool is_write) {
  stats_.increment(is_write ? "writes" : "reads");
  Cycles t = now + config_.tag_latency;  // descriptor tag lookup (1 cycle)

  if (tags_.lookup(line_addr)) {
    stats_.increment("hits");
    if (is_write) tags_.mark_dirty(line_addr);
    return t + config_.hit_latency;
  }

  stats_.increment("misses");
  const SetAssocTags::Victim victim = tags_.fill(line_addr);
  if (victim.valid && victim.dirty) {
    // Eviction: AXI write transaction on the output port.
    stats_.increment("evictions");
    t = ext_mem_->access(t, victim.line_addr, config_.line_bytes(),
                         /*is_write=*/true);
  }
  // Refill: AXI read transaction on the output port.
  t = ext_mem_->access(t, line_addr, config_.line_bytes(),
                       /*is_write=*/false);
  if (is_write) tags_.mark_dirty(line_addr);
  return t + config_.hit_latency;
}

double Llc::hit_ratio() const {
  const u64 total = stats_.get("reads") + stats_.get("writes");
  return total == 0 ? 0.0 : static_cast<double>(stats_.get("hits")) /
                                static_cast<double>(total);
}

}  // namespace hulkv::mem
