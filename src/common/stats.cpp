#include "common/stats.hpp"

#include <sstream>

namespace hulkv {

std::string StatGroup::to_string() const {
  std::ostringstream os;
  for (const auto& [key, value] : counters_) {
    os << name_ << "." << key << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace hulkv
