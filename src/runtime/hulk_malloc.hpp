// Shared-memory allocation (paper section IV).
//
// "CVA6's MMU supports SV39 virtual memory paging, while the PMCA can
// only generate 32-bit addresses. A special main memory shared region,
// accessible through the user-space hulk_malloc() function, enables data
// sharing in this mixed-address space. The function allocates contiguous
// memory buffers within accessible memory space, making pointer sharing
// between the subsystems straightforward."
//
// In HULK-V's physical map the external memory window starts at
// 0x8000_0000, so the whole 512 MB of HyperRAM is reachable with 32-bit
// pointers — hulk_malloc hands out physically contiguous buffers there.
// The same Arena type manages kernel scratch in the L2SPM and TCDM.
#pragma once

#include "common/types.hpp"
#include "snapshot/archive.hpp"

namespace hulkv::runtime {

/// Contiguous bump allocator over one address window.
class Arena {
 public:
  Arena(Addr base, u64 size) : base_(base), size_(size), cursor_(base) {
    HULKV_CHECK(size > 0, "empty arena");
  }

  /// Allocate `bytes` aligned to `align` (power of two).
  /// Throws SimError when the region is exhausted.
  Addr alloc(u64 bytes, u64 align = 8);

  /// Release everything (arena allocation is per-phase, not per-object).
  void reset() { cursor_ = base_; }

  Addr base() const { return base_; }
  u64 size() const { return size_; }
  u64 used() const { return cursor_ - base_; }
  u64 available() const { return size_ - used(); }

  /// Snapshot traversal (base/size are construction-time; only the
  /// bump cursor is state).
  void serialize(snapshot::Archive& ar) { ar.pod(cursor_); }

 private:
  Addr base_;
  u64 size_;
  Addr cursor_;
};

/// The hulk_malloc() shared region: a singleton-per-SoC arena over the
/// 32-bit-addressable external memory window. Owned by OffloadRuntime;
/// exposed here for direct use in tests and examples.
class SharedRegion {
 public:
  SharedRegion(Addr dram_base, u64 dram_size)
      : arena_(dram_base, dram_size) {}

  /// User-space hulk_malloc(): contiguous, 64-byte aligned (cache line).
  Addr hulk_malloc(u64 bytes) { return arena_.alloc(bytes, 64); }

  void reset() { arena_.reset(); }
  Arena& arena() { return arena_; }

  /// Snapshot traversal.
  void serialize(snapshot::Archive& ar) { arena_.serialize(ar); }

 private:
  Arena arena_;
};

}  // namespace hulkv::runtime
