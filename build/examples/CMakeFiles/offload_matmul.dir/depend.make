# Empty dependencies file for offload_matmul.
# This may be replaced when dependencies are built.
