// DNN layer-graph descriptors for the two end-to-end networks of the
// energy-efficiency study (paper section VI-C): an image-classification
// network deployed with DORY [20] and the DroNet-style autonomous-
// navigation network [22]. Quantised int8 (DORY's deployment precision).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hulkv::apps {

/// One convolutional layer (pointwise/depthwise/standard) or FC layer.
struct ConvLayer {
  std::string name;
  u32 in_h = 1, in_w = 1, in_c = 1;
  u32 out_c = 1;
  u32 kernel = 3;
  u32 stride = 1;
  bool depthwise = false;

  u32 out_h() const { return (in_h - 1) / stride + 1; }
  u32 out_w() const { return (in_w - 1) / stride + 1; }

  /// Multiply-accumulates of the layer.
  u64 macs() const {
    const u64 spatial = static_cast<u64>(out_h()) * out_w();
    const u64 per_pixel =
        depthwise ? static_cast<u64>(kernel) * kernel * in_c
                  : static_cast<u64>(kernel) * kernel * in_c * out_c;
    return spatial * per_pixel;
  }

  /// int8 weight footprint.
  u64 weight_bytes() const {
    return depthwise ? static_cast<u64>(kernel) * kernel * in_c
                     : static_cast<u64>(kernel) * kernel * in_c * out_c;
  }

  u64 input_bytes() const {
    return static_cast<u64>(in_h) * in_w * in_c;
  }
  u64 output_bytes() const {
    return static_cast<u64>(out_h()) * out_w() * out_c;
  }
};

struct Network {
  std::string name;
  std::vector<ConvLayer> layers;

  u64 total_macs() const {
    u64 total = 0;
    for (const auto& layer : layers) total += layer.macs();
    return total;
  }
  u64 total_weight_bytes() const {
    u64 total = 0;
    for (const auto& layer : layers) total += layer.weight_bytes();
    return total;
  }
};

}  // namespace hulkv::apps
