// Text-assembly frontend: parses the same syntax the disassembler emits
// (plus labels, comments and the common pseudo-instructions) into encoded
// programs. Useful for writing kernels and test programs as plain text
// instead of through the builder API; the disasm -> parse round-trip is
// property-tested over the whole operation set.
//
// Syntax:
//   label:                      # binds a label
//   addi x5, x6, -4             // x-names or ABI names (t0, a0, sp, ...)
//   lw a0, 8(a1)                # loads/stores use offset(base)
//   fmadd.s f0, f1, f2, f3
//   beq t0, t1, loop            # label target...
//   bne t0, t1, pc+12           # ...or pc-relative offset
//   lui x1, 0x12345             # U-type takes the upper-20 value
//   csrrs x5, 0xc00, x0
//   li t0, 0x123456789          # pseudo: nop, mv, li, j, call, ret,
//   p.lw x10, 4(x5)             #         beqz, bnez
//   pv.sdotsp.b x5, x6, x7
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace hulkv::isa {

/// Assemble a full program text at `base`. Throws SimError with the line
/// number on any syntax error or undefined label.
std::vector<u32> parse_program(const std::string& text, Addr base,
                               bool rv64);

}  // namespace hulkv::isa
