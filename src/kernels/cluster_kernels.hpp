// PMCA versions of the DSP kernels of Fig. 6: RV32 + Xpulp code executed
// by all 8 cluster cores, at *reduced precision* (int8 / fp16) to exploit
// the SIMD extensions the host lacks (paper section VI-A).
//
// Every kernel follows the PULP pattern the paper describes: core 0 DMAs
// the inputs from the shared external memory into the TCDM, the team
// barriers, cores partition the work by hart id (zero-overhead hardware
// loops + post-increment accesses + sdotsp/vfmac in the hot loop), the
// team barriers again, and core 0 DMAs the result back.
//
// Argument blocks are arrays of u32 words in the TCDM (see
// runtime/offload.hpp); the layout of each kernel is documented on its
// builder. Problem sizes are baked into the code as immediates.
#pragma once

#include "kernels/kernel.hpp"

namespace hulkv::kernels {

/// C[MxN](i32) = A[MxK](i8) x BT[NxK](i8)^T via pv.sdotsp.b.
/// Args: [0]=A_ext [1]=BT_ext [2]=C_ext [3]=A_l1 [4]=BT_l1 [5]=C_l1.
/// Requires k % 4 == 0.
KernelProgram cluster_matmul_i8(u32 m, u32 n, u32 k);

/// Full-precision variant of the matmul for the precision ablation
/// (paper section VI-A: reduced precision doubles/quadruples the
/// operations per cycle): C[MxN](i32) = A[MxK](i32) x BT[NxK](i32)^T,
/// scalar p.mac inner loop. Args as cluster_matmul_i8 (word buffers).
KernelProgram cluster_matmul_i32(u32 m, u32 n, u32 k);

/// Full-precision axpy: y += alpha*x on fp32 via fmadd.s.
/// Args: [0]=x_ext [1]=y_ext [2]=alpha (fp32 bits, by value)
/// [3]=x_l1 [4]=y_l1. Requires n % 8 == 0.
KernelProgram cluster_axpy_f32(u32 n);

/// C[MxN](fp32) = A[MxK](fp16) x BT[NxK](fp16)^T via vfdotpex.s.h.
/// Args as cluster_matmul_i8. Requires k % 2 == 0.
KernelProgram cluster_matmul_f16(u32 m, u32 n, u32 k);

/// 3x3 valid convolution, int8 image/kernel, int32 out, p.mac inner.
/// Args: [0]=img_ext [1]=ker_ext [2]=out_ext [3]=img_l1 [4]=ker_l1
/// [5]=out_l1.
KernelProgram cluster_conv3x3_i8(u32 h, u32 w);

/// FIR int8 x/h, int32 y, pv.sdotsp.b inner. Requires taps % 4 == 0.
/// Args: [0]=x_ext [1]=h_ext [2]=y_ext [3]=x_l1 [4]=h_l1 [5]=y_l1.
KernelProgram cluster_fir_i8(u32 n, u32 taps);

/// y += alpha*x on packed fp16 pairs via vfmac.h. Requires n % 16 == 0.
/// Args: [0]=x_ext [1]=y_ext [2]=alpha pair (fp16 value duplicated in
/// both lanes, passed by value) [3]=x_l1 [4]=y_l1.
KernelProgram cluster_axpy_f16(u32 n);

/// ReLU over int8 via pv.max.b (4 lanes/cycle) — the activation stage of
/// every DORY-deployed DNN layer. Requires n % 4 == 0.
/// Args: [0]=x_ext [1]=y_ext [2]=x_l1 [3]=y_l1.
KernelProgram cluster_relu_i8(u32 n);

/// Dot product fp16 with fp32 accumulation (vfdotpex.s.h), tree-free
/// reduction by core 0. Result (fp32 bits) left at args[5]. Requires
/// n % 16 == 0.
/// Args: [0]=x_ext [1]=y_ext [2]=x_l1 [3]=y_l1 [4]=partials_l1
/// [5]=result_l1.
KernelProgram cluster_dotp_f16(u32 n);

}  // namespace hulkv::kernels
