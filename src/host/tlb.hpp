// SV39 TLB timing model for the host MMU (paper section IV: "CVA6's MMU
// supports SV39 virtual memory paging").
//
// Linux runs on HULK-V with paging enabled, so the cost of address
// translation is part of the CPU-centric numbers. This model captures the
// observable timing: a fully associative, LRU data/instruction TLB; a
// miss triggers an SV39 three-level page-table walk, each level a real
// (timed) memory access through the data-cache path — so walk cost
// depends on the memory configuration exactly like any other access, and
// hot page-table lines get cached.
//
// Translation is identity (the simulator runs physically addressed
// programs); only the *timing* of translation is modelled. Disabled by
// default so bare-metal numbers match the FPGA methodology; the Linux
// overhead study enables it (see tests/host_test.cc and
// bench/ablation_memsys.cpp).
#pragma once

#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "snapshot/archive.hpp"

namespace hulkv::host {

struct TlbConfig {
  u32 entries = 16;       // CVA6-class fully associative TLB
  u32 levels = 3;         // SV39: three page-table levels
  u64 page_bytes = 4096;
};

class Tlb {
 public:
  /// `pte_read(now, pte_addr)` performs one timed page-table-entry read
  /// and returns its completion cycle (wired to the L1D path by the core).
  using PteReader = std::function<Cycles(Cycles now, Addr pte_addr)>;

  Tlb(const TlbConfig& config, PteReader pte_read);

  /// Translate `vaddr` at cycle `now`; returns the cycle at which the
  /// physical address is available (== now on a TLB hit).
  Cycles translate(Cycles now, Addr vaddr);

  /// sfence.vma: drop all entries.
  void flush();

  /// Freshly-constructed state: entries, LRU clock, stats.
  void reset();

  /// Snapshot traversal.
  void serialize(snapshot::Archive& ar);

  const StatGroup& stats() const { return stats_; }
  double hit_ratio() const;

  /// Base of the synthetic page-table region (inside the external-memory
  /// window, above the shared heap).
  static constexpr Addr kPageTableBase = 0x9F00'0000ull;

 private:
  struct Entry {
    u64 vpn = 0;
    u64 lru = 0;
    bool valid = false;
  };

  TlbConfig config_;
  PteReader pte_read_;
  std::vector<Entry> entries_;
  u64 use_clock_ = 0;
  StatGroup stats_;
};

}  // namespace hulkv::host
