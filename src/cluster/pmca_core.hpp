// PMCA core model: one of the 8 CV32E4/RI5CY-class RV32 cores of the
// Programmable Multi-Core Accelerator (paper section III-C).
//
// Functional RV32-IMF instruction-set simulator with the XpulpV2-style
// DSP extensions the paper's speedups rest on:
//   * zero-overhead hardware loops (2 nesting levels),
//   * post-increment loads/stores (address update folded into the access),
//   * single-cycle MAC,
//   * integer SIMD on 4x8-bit / 2x16-bit lanes incl. dot-product-
//     accumulate (pv.sdotsp.*),
//   * packed FP16 SIMD with FP32 accumulation (vfmac.h / vfdotpex.s.h).
//
// Timing: 4-stage in-order pipeline modelled as 1 instruction/cycle;
// TCDM accesses complete in one cycle unless a bank conflict serialises
// them; taken branches pay a 2-cycle flush; instruction fetch goes
// through the two-level cluster I-cache. Demand accesses outside the
// TCDM cross the AXI port (higher latency) — kernels avoid them by
// construction, exactly like real PULP software.
//
// The PMCA bare-metal runtime reaches the cluster devices (event unit
// barrier, DMA, end-of-offload) through the environment-call interface:
// `ecall` with a7 = envcall id. The cluster installs the handler; see
// cluster.hpp.
#pragma once

#include <functional>

#include "cluster/icache.hpp"
#include "cluster/tcdm.hpp"
#include "common/stats.hpp"
#include "isa/block_cache.hpp"
#include "isa/decoder.hpp"
#include "mem/interconnect.hpp"
#include "profile/profile.hpp"

namespace hulkv::cluster {

/// Environment-call ids (a7) used by the PMCA bare-metal runtime.
namespace envcall {
inline constexpr u64 kExit = 0;       // end of this core's kernel
inline constexpr u64 kBarrier = 1;    // event-unit team barrier
inline constexpr u64 kDma1d = 2;      // a0=dst a1=src a2=bytes -> a0=job
inline constexpr u64 kDma2d = 3;      // a0..a4 dst,src,row,rows,stride
inline constexpr u64 kDmaWait = 4;    // wait all outstanding jobs
inline constexpr u64 kCoreCount = 5;  // a0 = number of cores in the team
}  // namespace envcall

struct PmcaCoreConfig {
  u32 core_id = 0;
  Cycles mul_latency = 0;    // single-cycle multiplier / MAC
  Cycles div_latency = 16;
  Cycles fpu_latency = 0;    // pipelined shared FPU, 1/cycle throughput
  Cycles taken_branch_penalty = 2;
  Cycles jump_penalty = 1;
};

class PmcaCore {
 public:
  /// Threaded-tier handler table (pmca_core.cpp); needs the same
  /// private access as exec().
  friend struct ThreadedPmca;

  enum class State { kRunning, kBlocked, kFinished };

  /// "No limit" clock key for run_slice(): no core clock ever reaches
  /// it, so the slice only ends on a state change, an envcall or the
  /// instruction budget. CoreScheduler::runner_up yields the same
  /// sentinel when the stepped core is the only runnable one.
  static constexpr Cycles kNoLimitCycle = ~0ull;
  static constexpr u32 kNoLimitId = ~0u;

  /// Handles ecall. May block or finish the core (set_state) and may
  /// advance its clock to model service time.
  using EnvHandler = std::function<void(PmcaCore&)>;

  PmcaCore(const PmcaCoreConfig& config, Tcdm* tcdm, Addr tcdm_base,
           ClusterIcache* icache, mem::SocBus* bus);

  /// Prepare for a new kernel: clear registers and loops, set the entry
  /// point, keep the clock (time continues across offloads).
  void reset_for_run(Addr entry);

  /// Execute one instruction. Only valid in kRunning.
  void step();

  /// Execute a run of instructions from the decoded-block cache while
  /// this core remains the cluster's laggard: runs until the core is no
  /// longer kRunning, an environment call retires (its side effects —
  /// barrier wake-ups, DMA — must be observed by the scheduler), or the
  /// local clock key (cycle, core_id) reaches the lexicographic limit
  /// (`limit_cycle`, `limit_id`) — the scheduler passes the runner-up
  /// core's key so time-ordering of shared-resource reservations is
  /// exactly that of per-instruction min-clock scheduling. Executes at
  /// least one and at most `max_instrs` instructions.
  void run_slice(Cycles limit_cycle, u32 limit_id,
                 u64 max_instrs = UINT64_MAX);

  // ---- state ----
  State state() const { return state_; }
  void set_state(State s) { state_ = s; }
  u32 core_id() const { return config_.core_id; }

  u32 reg(u8 index) const { return x_[index]; }
  void set_reg(u8 index, u32 value) {
    if (index != 0) x_[index] = value;
  }
  u32 freg(u8 index) const { return f_[index]; }
  void set_freg(u8 index, u32 value) { f_[index] = value; }
  Addr pc() const { return pc_; }

  Cycles now() const { return cycle_; }
  void advance_to(Cycles cycle) {
    if (cycle > cycle_) cycle_ = cycle;
  }

  void set_env_handler(EnvHandler handler) { env_ = std::move(handler); }

  /// Drop cached decoded blocks (O(1) generation bump; stale blocks
  /// re-translate on next dispatch).
  void invalidate_decode_cache() { blocks_.invalidate(); }
  /// Range-scoped variant: no-op unless [base, base+bytes) overlaps
  /// code this core actually translated.
  void invalidate_decode_cache(Addr base, u64 bytes) {
    blocks_.invalidate_range(base, bytes);
  }
  /// Decoded-block cache (introspection for tests and stats).
  const isa::BlockCache& decode_blocks() const { return blocks_; }
  isa::BlockCache& decode_blocks() { return blocks_; }

  /// Emit one log line per retired instruction (LogLevel::kTrace).
  void set_trace(bool enabled) { trace_ = enabled; }

  /// Execution tier (DESIGN.md §15). Defaults to the process-wide
  /// isa::default_tier(); the threaded tier self-deoptimizes to the
  /// interpreter while the profiler or tracing is active, and observes
  /// the run-ahead horizon exactly like the interpreter loop.
  void set_tier(isa::ExecTier tier) { tier_ = tier; }
  isa::ExecTier tier() const { return tier_; }

  /// Close out this core's trace for one kernel run: emits the per-core
  /// `run` interval [dispatched, now] and flushes the commit batch so
  /// windowed commit totals are exact. Called by the cluster scheduler.
  void trace_kernel_done(Cycles dispatched);

  StatGroup& stats() { return stats_; }
  u64 instret() const { return instret_; }

  /// Tell the cycle profiler why this core's next idle gap happened
  /// (barrier wake-up, dispatch sleep). Called by the cluster when it
  /// advances a blocked core's clock from outside an instruction.
  void profile_note_gap(profile::Reason reason) {
    if (profile::CoreProfile* prof =
            profile::attach(prof_handle_, stats_.name())) {
      prof->note_gap(reason);
    }
  }

  /// Snapshot traversal: registers, clock, run state, hardware loops,
  /// stats. The decoded-block cache is invalidated on load.
  void serialize(snapshot::Archive& ar);

  /// Freshly-constructed state (clock rewound, state back to kFinished).
  void reset();

 private:
  void exec(const isa::Instr& instr);
  /// Interpreter tier of run_slice() (also the deopt target of the
  /// threaded tier): the per-instruction decode-switch loop.
  void run_slice_interp(Cycles limit_cycle, u32 limit_id, u64 max_instrs,
                        bool lockstep, profile::CoreProfile* prof);
  /// Threaded tier of run_slice(): pre-resolved handler pointers, no
  /// per-instruction opcode switch or field decode. Delegates to
  /// run_slice_interp() at deopt points (ecall/ebreak/illegal).
  void run_slice_threaded(Cycles limit_cycle, u32 limit_id, u64 max_instrs);
  void apply_hwloops();
  /// Cluster I-cache timing for a fetch at `pc`: paid once per line.
  void fetch_timing(Addr pc);

  u32 load(Addr addr, u32 bytes, bool sign, Cycles issue);
  void store(Addr addr, u32 value, u32 bytes, Cycles issue);
  bool in_tcdm(Addr addr) const;

  struct HwLoop {
    Addr start = 0;
    Addr end = 0;
    u32 count = 0;
  };

  void trace_commit();
  void trace_stall(Cycles issue, Cycles stall, Addr addr);

  PmcaCoreConfig config_;
  Tcdm* tcdm_;
  Addr tcdm_base_;
  // Same-page fast path to the TCDM front-end: raw storage pointer and
  // size cached at construction (the TCDM backing vector never resizes),
  // so the common load/store skips two indirections per access.
  u8* tcdm_data_;
  u64 tcdm_size_;
  ClusterIcache* icache_;
  mem::SocBus* bus_;
  StatGroup stats_;
  // Interned counter slots for the per-instruction hot path.
  u64& ctr_loads_;
  u64& ctr_stores_;
  u64& ctr_mac_ops_;
  u64& ctr_simd_ops_;
  u64& ctr_taken_branches_;
  u64& ctr_hwloop_backedges_;
  trace::TrackHandle trace_track_;
  u32 pending_commits_ = 0;

  u32 x_[32] = {};
  u32 f_[32] = {};
  Addr pc_ = 0;
  Addr next_pc_ = 0;
  Cycles cycle_ = 0;
  Cycles issue_cycle_ = 0;
  u64 instret_ = 0;
  State state_ = State::kFinished;
  HwLoop loops_[2];
  Addr fetch_line_ = ~0ull;

  bool trace_ = false;
  isa::ExecTier tier_ = isa::default_tier();
  isa::BlockCache blocks_;
  EnvHandler env_;
  // Cold (touched once per run_slice(), not per instruction); kept last
  // so it does not shift the execution-state members across cache lines.
  profile::Handle prof_handle_;  // cycle-attribution registration
};

/// Threaded-tier handler lookup for one op (null fn == deopt point).
/// Exposed so threaded_test can assert exhaustive table coverage.
isa::threaded::HandlerInfo threaded_resolve(isa::Op op,
                                            const PmcaCoreConfig& config);

}  // namespace hulkv::cluster
