// End-to-end DNN deployment (paper section VI-C): run the MobileNetV1
// classifier and the DroNet navigation network through the DORY-style
// tiler over the HyperRAM hierarchy; print the per-layer schedule, the
// frame rate at the ASIC frequencies, and the full energy breakdown.
#include <cstdio>

#include "apps/dory_tiler.hpp"
#include "apps/networks.hpp"
#include "core/soc.hpp"
#include "power/energy.hpp"

using namespace hulkv;

namespace {

void run_network(const apps::Network& network) {
  core::HulkVSoc soc;  // HyperRAM + LLC
  apps::DoryTiler tiler(&soc, {});
  const auto sched = tiler.run(network);

  std::printf("=== %s ===\n", network.name.c_str());
  std::printf("%-10s %12s %10s %7s %12s %12s\n", "layer", "MACs",
              "ext bytes", "tiles", "compute cyc", "total cyc");
  for (const auto& layer : sched.layers) {
    std::printf("%-10s %12llu %10llu %7u %12llu %12llu\n",
                layer.name.c_str(),
                static_cast<unsigned long long>(layer.macs),
                static_cast<unsigned long long>(layer.ext_bytes),
                layer.tiles,
                static_cast<unsigned long long>(layer.compute_cycles),
                static_cast<unsigned long long>(layer.total_cycles));
  }

  const core::FrequencyPlan freq;
  const double seconds =
      static_cast<double>(sched.total_cycles) / (freq.soc_mhz * 1e6);
  std::printf("\ntotal: %.2f MMACs, %llu cycles, CCR_hyper %.2f\n",
              sched.macs / 1e6,
              static_cast<unsigned long long>(sched.total_cycles),
              sched.ccr());
  std::printf("frame rate at ASIC frequencies: %.1f fps\n", 1.0 / seconds);

  power::RunActivity activity;
  activity.duration = sched.total_cycles;
  activity.cluster_activity = 1.0;
  activity.host_activity = 0.05;
  activity.mem_busy_cycles = sched.ext_busy_cycles;
  const auto energy =
      power::compute_energy(activity, power::PowerModel{}, freq);
  std::printf("energy/frame: %.3f mJ (host %.3f + cluster %.3f + soc %.3f "
              "+ memctrl %.3f + DRAM %.3f), avg power %.1f mW\n\n",
              energy.total_mj, energy.host_mj, energy.cluster_mj,
              energy.soc_mj, energy.mem_ctrl_mj, energy.mem_device_mj,
              energy.avg_power_mw);
}

}  // namespace

int main() {
  run_network(apps::mobilenet_v1_128());
  run_network(apps::dronet_200());
  return 0;
}
