#include "serve/workload.hpp"

#include <string>
#include <utility>

#include "common/rng.hpp"
#include "kernels/golden.hpp"
#include "kernels/host_kernels.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "snapshot/archive.hpp"

namespace hulkv::serve {

namespace {

// Service-sized problem footprints: same shapes and seeds-per-workload
// scheme as bench/fig8_llc_effect.cpp, scaled down ~4x so one point is
// milliseconds of simulation.
constexpr u32 kCrcBytes = 16 * 1024;
constexpr u32 kFirSamples = 4096;
constexpr u32 kFirTaps = 32;
constexpr u32 kSortElems = 4096;
constexpr u32 kHistBytes = 24 * 1024;
constexpr u32 kSearchBytes = 24 * 1024;
constexpr u32 kNeedleBytes = 8;

constexpr const char* kWorkloadNames[] = {"crc32", "fir", "sort",
                                          "histogram", "strsearch"};
constexpr u8 kWorkloadCount =
    static_cast<u8>(sizeof(kWorkloadNames) / sizeof(kWorkloadNames[0]));

kernels::KernelProgram build_program(u8 id) {
  switch (id) {
    case 0: return kernels::host_crc32(kCrcBytes);
    case 1: return kernels::host_fir_i32(kFirSamples, kFirTaps);
    case 2: return kernels::host_shell_sort(kSortElems);
    case 3: return kernels::host_histogram(kHistBytes);
    case 4: return kernels::host_strsearch(kSearchBytes, kNeedleBytes);
  }
  throw SimError("serve: unknown workload id " + std::to_string(id));
}

}  // namespace

u8 workload_count() { return kWorkloadCount; }

const char* workload_name(u8 id) {
  check_workload(id);
  return kWorkloadNames[id];
}

void check_workload(u8 id) {
  HULKV_CHECK(id < kWorkloadCount,
              "serve: workload id out of range: " + std::to_string(id));
}

void check_point(const PointParams& point) {
  check_workload(point.workload);
  HULKV_CHECK(point.mem_kind <= static_cast<u8>(core::MainMemoryKind::kRpcDram),
              "serve: memory kind out of range: " +
                  std::to_string(point.mem_kind));
  HULKV_CHECK(point.llc <= 1,
              "serve: llc flag out of range: " + std::to_string(point.llc));
}

core::SocConfig point_config(const PointParams& point) {
  check_point(point);
  core::SocConfig cfg;
  cfg.main_memory = static_cast<core::MainMemoryKind>(point.mem_kind);
  cfg.enable_llc = point.llc != 0;
  return cfg;
}

WorkloadSetup setup_workload(u8 id, core::HulkVSoc& soc) {
  check_workload(id);
  switch (id) {
    case 0: {  // crc32: streaming reads + table lookups
      Xoshiro256 rng(1);
      std::vector<u8> data(kCrcBytes);
      for (auto& b : data) b = static_cast<u8>(rng.next());
      const auto table = kernels::golden::crc32_table();
      const Addr pd = core::layout::kSharedBase;
      const Addr pt = pd + kCrcBytes;
      const Addr pr = pt + 1024;
      soc.write_mem(pd, data.data(), kCrcBytes);
      soc.write_mem(pt, table.data(), 1024);
      return {build_program(id), {pd, pt, pr}};
    }
    case 1: {  // fir: dense compute over a sliding window
      Xoshiro256 rng(2);
      std::vector<i32> x(kFirSamples), h(kFirTaps);
      for (auto& v : x) v = static_cast<i32>(rng.next_range(-1000, 1000));
      for (auto& v : h) v = static_cast<i32>(rng.next_range(-16, 16));
      const Addr px = core::layout::kSharedBase;
      const Addr ph = px + kFirSamples * 4;
      const Addr py = ph + kFirTaps * 4;
      soc.write_mem(px, x.data(), kFirSamples * 4);
      soc.write_mem(ph, h.data(), kFirTaps * 4);
      return {build_program(id), {px, ph, py}};
    }
    case 2: {  // sort: strided, data-dependent accesses
      Xoshiro256 rng(3);
      std::vector<i32> data(kSortElems);
      for (auto& v : data)
        v = static_cast<i32>(rng.next_range(-1000000, 1000000));
      const Addr pd = core::layout::kSharedBase;
      soc.write_mem(pd, data.data(), kSortElems * 4);
      return {build_program(id), {pd}};
    }
    case 3: {  // histogram: streaming reads + scattered RMW
      Xoshiro256 rng(4);
      std::vector<u8> data(kHistBytes);
      for (auto& b : data) b = static_cast<u8>(rng.next());
      const Addr pd = core::layout::kSharedBase;
      const Addr pb = pd + kHistBytes;
      soc.write_mem(pd, data.data(), kHistBytes);
      return {build_program(id), {pd, pb}};
    }
    case 4: {  // strsearch: branchy text scan
      Xoshiro256 rng(5);
      std::vector<u8> hay(kSearchBytes);
      for (auto& b : hay) b = static_cast<u8>('a' + rng.next_below(4));
      const std::string needle = "abcdabcd";
      const Addr ph = core::layout::kSharedBase;
      const Addr pn = ph + kSearchBytes;
      const Addr pr = pn + 64;
      soc.write_mem(ph, hay.data(), kSearchBytes);
      soc.write_mem(pn, needle.data(), kNeedleBytes);
      return {build_program(id), {ph, pn, pr}};
    }
  }
  throw SimError("serve: unreachable workload id");
}

u64 workload_digest(u8 id) {
  check_workload(id);
  // Built once per process: the programs are pure functions of the id.
  static const std::vector<u64> digests = [] {
    std::vector<u64> out;
    for (u8 w = 0; w < kWorkloadCount; ++w) {
      const kernels::KernelProgram program = build_program(w);
      out.push_back(snapshot::fnv1a(snapshot::kFnvOffset,
                                    program.words.data(),
                                    program.words.size() * sizeof(u32)));
    }
    return out;
  }();
  return digests[id];
}

}  // namespace hulkv::serve
