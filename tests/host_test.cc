// CVA6 host-core tests: RV64 IMFD semantics (via small assembled
// programs whose exit code carries the result), timing behaviour, CSRs,
// interrupt-controller models.
#include <gtest/gtest.h>

#include <bit>

#include "core/soc.hpp"
#include "host/clint.hpp"
#include "host/plic.hpp"
#include "isa/assembler.hpp"
#include "kernels/kernel.hpp"

namespace hulkv {
namespace {

using isa::Assembler;
using isa::Op;
using namespace isa::reg;

core::SocConfig fast_config() {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;  // fast + deterministic
  return cfg;
}

/// Run a program fragment that leaves its result in a0 and exits.
u64 run_for_exit_code(const std::function<void(Assembler&)>& body,
                      std::span<const u64> args = {}) {
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, /*rv64=*/true);
  body(a);
  a.li(a7, 93);
  a.ecall();
  return kernels::run_host_program(soc, a.assemble(), args).exit_code;
}

TEST(Cva6, BasicArithmetic) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 20);
              a.li(t1, 22);
              a.add(a0, t0, t1);
            }),
            42u);
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 5);
              a.li(t1, 7);
              a.mul(a0, t0, t1);
            }),
            35u);
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, -8);
              a.srai(a0, t0, 1);
            }),
            static_cast<u64>(-4));
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, -8);
              a.srli(a0, t0, 60);
            }),
            0xFu);
}

TEST(Cva6, X0IsHardwiredZero) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(zero, 123);  // addi x0, x0, ... is a nop
              a.mv(a0, zero);
            }),
            0u);
}

TEST(Cva6, Rv64WordOps) {
  // addiw sign-extends the 32-bit result.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 0x7FFFFFFF);
              a.ri(Op::kAddiw, a0, t0, 1);
            }),
            0xFFFFFFFF80000000ull);
  // sllw uses only the low 5 shift bits and sign-extends.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 1);
              a.li(t1, 31);
              a.rr(Op::kSllw, a0, t0, t1);
            }),
            0xFFFFFFFF80000000ull);
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 0x123456789ll);
              a.li(t1, 0x1000000000ll);
              a.rr(Op::kMulw, a0, t0, t1);  // only low halves multiply
            }),
            0u);
}

TEST(Cva6, DivisionEdgeCases) {
  // Division by zero returns -1 (RISC-V spec, no trap).
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 42);
              a.li(t1, 0);
              a.rr(Op::kDiv, a0, t0, t1);
            }),
            ~0ull);
  // INT_MIN / -1 returns INT_MIN.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, INT64_MIN);
              a.li(t1, -1);
              a.rr(Op::kDiv, a0, t0, t1);
            }),
            static_cast<u64>(INT64_MIN));
  // Remainder by zero returns the dividend.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 42);
              a.li(t1, 0);
              a.rr(Op::kRem, a0, t0, t1);
            }),
            42u);
}

TEST(Cva6, MulhVariants) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, -1);
              a.li(t1, -1);
              a.rr(Op::kMulhu, a0, t0, t1);  // (2^64-1)^2 >> 64
            }),
            0xFFFFFFFFFFFFFFFEull);
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, -1);
              a.li(t1, -1);
              a.rr(Op::kMulh, a0, t0, t1);  // (-1 * -1) >> 64 = 0
            }),
            0u);
}

TEST(Cva6, LoadStoreWidths) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, core::layout::kSharedBase);
              a.li(t1, -2);  // 0xFFFF...FE
              a.sb(t1, 0, t0);
              a.lbu(a0, 0, t0);
            }),
            0xFEu);
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, core::layout::kSharedBase);
              a.li(t1, -2);
              a.sb(t1, 0, t0);
              a.load(Op::kLb, a0, 0, t0);  // sign-extends
            }),
            static_cast<u64>(-2));
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, core::layout::kSharedBase);
              a.li(t1, 0x1122334455667788ll);
              a.sd(t1, 0, t0);
              a.lw(a0, 4, t0);  // upper word, sign-extended
            }),
            0x11223344u);
}

TEST(Cva6, BranchesAndLoops) {
  // Sum 1..10 with a loop.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(a0, 0);
              a.li(t0, 1);
              a.li(t1, 11);
              a.label("loop");
              a.add(a0, a0, t0);
              a.addi(t0, t0, 1);
              a.blt(t0, t1, "loop");
            }),
            55u);
  // Unsigned comparison: -1 > 1 unsigned.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, -1);
              a.li(t1, 1);
              a.li(a0, 0);
              a.bltu(t0, t1, "skip");
              a.li(a0, 1);
              a.label("skip");
            }),
            1u);
}

TEST(Cva6, JalLinksAndReturns) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(a0, 1);
              a.call("fn");
              a.addi(a0, a0, 100);
              a.j("done");
              a.label("fn");
              a.addi(a0, a0, 10);
              a.ret();
              a.label("done");
            }),
            111u);
}

TEST(Cva6, Fp32Arithmetic) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, std::bit_cast<u32>(1.5f));
              a.ri(Op::kFmvWX, 1, t0, 0);
              a.li(t0, std::bit_cast<u32>(2.25f));
              a.ri(Op::kFmvWX, 2, t0, 0);
              a.rr(Op::kFaddS, 0, 1, 2);
              a.ri(Op::kFmvXW, a0, 0, 0);
            }),
            static_cast<u64>(std::bit_cast<u32>(3.75f)));
  // fmadd: 2*3+4 = 10.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, 2);
              a.ri(Op::kFcvtSW, 1, t0, 0);
              a.li(t0, 3);
              a.ri(Op::kFcvtSW, 2, t0, 0);
              a.li(t0, 4);
              a.ri(Op::kFcvtSW, 3, t0, 0);
              a.r4(Op::kFmaddS, 0, 1, 2, 3);
              a.ri(Op::kFcvtWS, a0, 0, 0);
            }),
            10u);
}

TEST(Cva6, Fp64Arithmetic) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, std::bit_cast<u64>(0.5));
              a.ri(Op::kFmvDX, 1, t0, 0);
              a.li(t0, std::bit_cast<u64>(0.25));
              a.ri(Op::kFmvDX, 2, t0, 0);
              a.rr(Op::kFmulD, 0, 1, 2);
              a.ri(Op::kFmvXD, a0, 0, 0);
            }),
            std::bit_cast<u64>(0.125));
  // fcvt.d.s widens exactly.
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, std::bit_cast<u32>(7.5f));
              a.ri(Op::kFmvWX, 1, t0, 0);
              a.ri(Op::kFcvtDS, 2, 1, 0);
              a.ri(Op::kFmvXD, a0, 2, 0);
            }),
            std::bit_cast<u64>(7.5));
}

TEST(Cva6, FpComparisons) {
  EXPECT_EQ(run_for_exit_code([](Assembler& a) {
              a.li(t0, std::bit_cast<u32>(1.0f));
              a.ri(Op::kFmvWX, 1, t0, 0);
              a.li(t0, std::bit_cast<u32>(2.0f));
              a.ri(Op::kFmvWX, 2, t0, 0);
              a.rr(Op::kFltS, a0, 1, 2);
            }),
            1u);
}

TEST(Cva6, CsrCycleAndInstret) {
  // instret after N instructions must be close to N; cycle >= instret.
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  for (int i = 0; i < 10; ++i) a.nop();
  a.ri(Op::kCsrrs, t0, 0, isa::csr::kInstret);
  a.ri(Op::kCsrrs, t1, 0, isa::csr::kCycle);
  a.mv(a0, t0);
  a.li(a7, 93);
  a.ecall();
  const auto run = kernels::run_host_program(soc, a.assemble(), {});
  EXPECT_EQ(run.exit_code, 10u);  // the 10 nops
  EXPECT_GE(run.cycles, run.instret);
}

TEST(Cva6, IllegalInstructionThrows) {
  core::HulkVSoc soc(fast_config());
  // A cluster-only Xpulp instruction must trap on the host.
  Assembler a(core::layout::kHostCodeBase, true);
  a.rr(Op::kPvAddB, a0, a1, a2);
  soc.load_program(core::layout::kHostCodeBase, a.assemble());
  soc.host().set_pc(core::layout::kHostCodeBase);
  EXPECT_THROW(soc.host().run(10), SimError);
}

TEST(Cva6, UnhandledEcallThrows) {
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  a.li(a7, 9999);
  a.ecall();
  soc.load_program(core::layout::kHostCodeBase, a.assemble());
  soc.host().set_pc(core::layout::kHostCodeBase);
  EXPECT_THROW(soc.host().run(10), SimError);
}

TEST(Cva6, WfiHandlerAdvancesClock) {
  core::HulkVSoc soc(fast_config());
  soc.host().set_wfi_handler([](Cycles now) { return now + 1000; });
  Assembler a(core::layout::kHostCodeBase, true);
  a.wfi();
  a.li(a7, 93);
  a.li(a0, 0);
  a.ecall();
  const auto run = kernels::run_host_program(soc, a.assemble(), {});
  EXPECT_GE(run.cycles, 1000u);
}

TEST(Cva6, DcacheCountsHitsAndMisses) {
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  // Read the same line twice: one miss then one hit.
  a.li(t0, core::layout::kSharedBase);
  a.lw(t1, 0, t0);
  a.lw(t2, 4, t0);
  a.li(a7, 93);
  a.li(a0, 0);
  a.ecall();
  kernels::run_host_program(soc, a.assemble(), {});
  EXPECT_EQ(soc.host().dcache().stats().get("misses"), 1u);
  EXPECT_EQ(soc.host().dcache().stats().get("hits"), 1u);
}

TEST(Cva6, BtfnBranchModel) {
  // A tight loop's backward taken branch must not pay the flush: the
  // loop below retires ~4 instructions per iteration and should take
  // close to 4 cycles per iteration, far less than with a 4-cycle
  // penalty per back edge.
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  a.li(t0, 1000);
  a.label("loop");
  a.addi(t1, t1, 1);
  a.addi(t0, t0, -1);
  a.bnez(t0, "loop");
  a.li(a7, 93);
  a.li(a0, 0);
  a.ecall();
  const auto run = kernels::run_host_program(soc, a.assemble(), {});
  EXPECT_LT(run.cycles, 3500u);
  EXPECT_EQ(soc.host().stats().get("branch_mispredicts"), 1u);  // exit only
}

TEST(Clint, TimerAndSoftwareInterrupt) {
  Cycles now = 0;
  host::Clint clint([&now] { return now; });
  EXPECT_FALSE(clint.software_interrupt_pending());
  clint.mmio_write(host::Clint::kMsip, 1, 4);
  EXPECT_TRUE(clint.software_interrupt_pending());
  clint.mmio_write(host::Clint::kMtimecmp, 500, 8);
  now = 499;
  EXPECT_FALSE(clint.timer_interrupt_pending());
  now = 500;
  EXPECT_TRUE(clint.timer_interrupt_pending());
  EXPECT_EQ(clint.mmio_read(host::Clint::kMtime, 8), 500u);
}

TEST(Plic, ClaimCompleteFlow) {
  host::Plic plic;
  plic.mmio_write(4 * 1, 1, 4);  // priority source 1
  plic.mmio_write(host::Plic::kEnableOffset, 0b10, 4);
  EXPECT_FALSE(plic.interrupt_pending());
  plic.raise(1);
  EXPECT_TRUE(plic.interrupt_pending());
  EXPECT_EQ(plic.mmio_read(host::Plic::kClaimOffset, 4), 1u);
  EXPECT_FALSE(plic.interrupt_pending());  // claimed
  plic.mmio_write(host::Plic::kClaimOffset, 1, 4);  // complete
  EXPECT_FALSE(plic.interrupt_pending());
  plic.raise(1);
  EXPECT_TRUE(plic.interrupt_pending());
}

TEST(Plic, DisabledSourcesStayPendingOnly) {
  host::Plic plic;
  plic.raise(3);
  EXPECT_FALSE(plic.interrupt_pending());  // not enabled
  EXPECT_EQ(plic.mmio_read(host::Plic::kPendingOffset, 4), 0b1000u);
}

}  // namespace
}  // namespace hulkv
