#include "serve/warm_pool.hpp"

namespace hulkv::serve {

namespace {
constexpr size_t kMemKinds = 3;
constexpr size_t kLlcStates = 2;
}  // namespace

WarmPool::WarmPool() {
  const size_t count = workload_count() * kMemKinds * kLlcStates;
  slots_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

size_t WarmPool::slot_index(const PointParams& point) const {
  check_point(point);
  return (point.workload * kMemKinds + point.mem_kind) * kLlcStates +
         (point.llc != 0 ? 1 : 0);
}

const WarmPool::Entry& WarmPool::get(const PointParams& point) {
  Slot& slot = *slots_[slot_index(point)];
  std::call_once(slot.once, [&] {
    Entry& e = slot.entry;
    e.config = point_config(point);
    core::HulkVSoc soc(e.config);
    WorkloadSetup setup = setup_workload(point.workload, soc);
    e.program = std::move(setup.program);
    e.args = std::move(setup.args);
    kernels::run_host_program(soc, e.program.words, e.args);  // warm run
    e.snapshot = batch::SocSnapshot::capture(soc);
    cold_builds_.fetch_add(1);
  });
  return slot.entry;
}

}  // namespace hulkv::serve
