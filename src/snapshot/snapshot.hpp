// Versioned binary container for full-SoC snapshots (DESIGN.md §11).
//
// Layout:
//
//   u32 magic  'HLKV' (0x564B4C48)
//   u32 format version (kFormatVersion)
//   repeated sections: { u32 id, u64 payload_bytes, payload }
//   end section: { id = kEndMarker, length = 8, u64 fnv1a checksum }
//
// The checksum covers every byte after the 8-byte header up to (but not
// including) the end section, so truncation and corruption are both
// detected with a clear error. Section ids/lengths let readers skip
// sections they do not understand — a newer writer can add sections
// without breaking an older reader of the same format version.
//
// Writer/Reader are deliberately dumb about content: components produce
// and consume section payloads through snapshot::Archive (archive.hpp);
// HulkVSoc::save()/restore() decide which sections exist (core/soc.cpp)
// and OffloadRuntime appends its own section (runtime/offload.cpp).
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <vector>

#include "snapshot/archive.hpp"

namespace hulkv::snapshot {

inline constexpr u32 kMagic = 0x564B4C48u;  // "HLKV" little-endian
inline constexpr u32 kFormatVersion = 1;

/// Section ids of format version 1. Values are part of the on-disk
/// format: never renumber, only append.
enum SectionId : u32 {
  kEndMarker = 0,   // checksum trailer
  kMeta = 1,        // SoC configuration fingerprint (restore validation)
  kHost = 2,        // CVA6: regs, clock, L1 models, TLBs, stats
  kCluster = 3,     // 8 PMCA cores, TCDM, event unit, DMA, I$, stats
  kLlc = 4,         // LLC tags + stats (absent when the LLC is disabled)
  kExtMem = 5,      // HyperRAM/DDR4/RPC-DRAM device timing state
  kBus = 6,         // crossbar stats + shared SRAM port occupancies
  kIopmp = 7,       // protection regions + enforcing flag
  kMailbox = 8,     // H2C/C2H FIFOs
  kPlic = 9,        // pending/enabled/claimed/priorities
  kClint = 10,      // msip + mtimecmp
  kUart = 11,       // transmitted output
  kUdma = 12,       // HyperRAM-controller uDMA stats
  kPeriphUdma = 13, // peripheral uDMA tx log + stats
  kL2 = 14,         // L2SPM contents
  kBootRom = 15,    // boot ROM contents
  kDramPages = 16,  // sparse external-memory pages (only dirty pages)
  kRuntime = 17,    // OffloadRuntime: arenas, images, hulk_malloc state
};

/// Streams sections to an std::ostream. Usage:
///   Writer w(os);
///   w.section(kHost, [&](Archive& ar) { host.serialize(ar); });
///   ...
///   w.finish();
class Writer {
 public:
  explicit Writer(std::ostream& os);
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Append one section whose payload is produced by `fill` (an Archive
  /// in kSave mode).
  void section(u32 id, const std::function<void(Archive&)>& fill);

  /// Write the checksum trailer. Must be called exactly once, last.
  void finish();

  ~Writer();

 private:
  void emit(const void* data, u64 len, bool checksummed);

  std::ostream& os_;
  u64 checksum_ = kFnvOffset;
  bool finished_ = false;
};

/// Parses a whole snapshot up front (header, section index, checksum)
/// and hands section payloads to components on demand. Throws SimError
/// with a specific message on bad magic, version mismatch, truncation
/// and checksum failure. Unknown section ids are retained but ignored.
class Reader {
 public:
  explicit Reader(std::istream& is);

  bool has(u32 id) const { return sections_.count(id) != 0; }

  /// Consume section `id` with `read` (an Archive in kLoad mode). The
  /// reader insists the payload is consumed exactly — a partial read
  /// means the writer and reader traversals disagree.
  void section(u32 id, const std::function<void(Archive&)>& read) const;

  /// Ids present in the file, in file order.
  const std::vector<u32>& ids() const { return ids_; }

 private:
  std::map<u32, std::vector<u8>> sections_;
  std::vector<u32> ids_;
};

/// Human-readable name of a section id (error messages, tooling).
const char* section_name(u32 id);

}  // namespace hulkv::snapshot
