#include "host/tlb.hpp"

#include "common/bitutil.hpp"

namespace hulkv::host {

Tlb::Tlb(const TlbConfig& config, PteReader pte_read)
    : config_(config),
      pte_read_(std::move(pte_read)),
      entries_(config.entries),
      stats_("tlb") {
  HULKV_CHECK(config.entries >= 1, "TLB needs entries");
  HULKV_CHECK(static_cast<bool>(pte_read_), "TLB needs a PTE reader");
}

Cycles Tlb::translate(Cycles now, Addr vaddr) {
  const u64 vpn = vaddr / config_.page_bytes;
  stats_.increment("lookups");

  Entry* lru = &entries_[0];
  for (Entry& entry : entries_) {
    if (entry.valid && entry.vpn == vpn) {
      entry.lru = ++use_clock_;
      stats_.increment("hits");
      return now;
    }
    if (entry.lru < lru->lru) lru = &entry;
  }

  // Miss: SV39 walk — one PTE read per level. The synthetic PTE
  // addresses reproduce the locality of a real radix walk: the root
  // level is one line (always hot), deeper levels spread with the VPN.
  stats_.increment("misses");
  Cycles t = now;
  for (u32 level = 0; level < config_.levels; ++level) {
    const u64 index = (vpn >> (9 * (config_.levels - 1 - level))) & 0x1FF;
    const Addr pte_addr =
        kPageTableBase + (static_cast<Addr>(level) << 16) + index * 8;
    t = pte_read_(t, pte_addr);
  }
  stats_.add("walk_cycles", t - now);

  lru->vpn = vpn;
  lru->valid = true;
  lru->lru = ++use_clock_;
  return t;
}

void Tlb::flush() {
  for (Entry& entry : entries_) entry = Entry{};
  stats_.increment("flushes");
}

void Tlb::reset() {
  for (Entry& entry : entries_) entry = Entry{};
  use_clock_ = 0;
  stats_.reset();
}

void Tlb::serialize(snapshot::Archive& ar) {
  ar.pod(use_clock_);
  // Field by field: Entry has padding bytes.
  for (Entry& entry : entries_) {
    ar.pod(entry.vpn);
    ar.pod(entry.lru);
    ar.pod(entry.valid);
  }
  stats_.serialize(ar);
}

double Tlb::hit_ratio() const {
  const u64 lookups = stats_.get("lookups");
  return lookups == 0 ? 0.0
                      : static_cast<double>(stats_.get("hits")) /
                            static_cast<double>(lookups);
}

}  // namespace hulkv::host
