// Regenerates Fig. 7: the synthetic cache-stress benchmark (section
// VI-B) on the four memory configurations:
//   1) DDR4 + LLC   2) HyperRAM + LLC   3) DDR4 only   4) HyperRAM only
//
// Primary sweep (the paper's x-axis): the L1 miss ratio, dialled from
// 0% to 100% by mixing resident-window reads (hits) with thrash-window
// reads (misses) — "reads can either be in the 0th way, causing either a
// miss or a hit, or in a different cache way and hit". The thrash window
// fits the LLC, so cases 1/2 absorb the misses while cases 3/4 pay the
// raw device latency.
//
// Secondary sweep: footprint (stride) scan across the L1 -> LLC -> DRAM
// capacity boundaries.
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/soc.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "report/report.hpp"

namespace {

using namespace hulkv;

struct Point {
  double miss_ratio;
  double cycles_per_read;
};

core::SocConfig make_config(core::MainMemoryKind kind, bool llc) {
  core::SocConfig cfg;
  cfg.main_memory = kind;
  cfg.enable_llc = llc;
  return cfg;
}

Point run_mixed(core::MainMemoryKind kind, bool llc, u32 miss_slots) {
  core::HulkVSoc soc(make_config(kind, llc));
  constexpr u32 kReads = 2048;
  constexpr u32 kRounds = 8;
  constexpr u32 kFootprint = 64 * 1024;  // > L1, fits the 128 kB LLC
  const Addr resident = core::layout::kSharedBase;
  const Addr thrash = resident + 4 * 1024;
  const std::array<u64, 2> args = {resident, thrash};
  // Warm-up round (paper: "the second iteration warms up the caches").
  kernels::run_host_program(
      soc, kernels::host_mixed_reads(miss_slots, kFootprint, kReads, 6).words,
      args);
  const auto run = kernels::run_host_program(
      soc,
      kernels::host_mixed_reads(miss_slots, kFootprint, kReads, kRounds)
          .words,
      args);
  auto& d = soc.host().dcache().stats();
  const double accesses =
      static_cast<double>(d.get("reads") + d.get("writes"));
  return {accesses == 0 ? 0
                        : static_cast<double>(d.get("misses")) / accesses,
          static_cast<double>(run.cycles) / (double{kReads} * kRounds)};
}

Point run_stride(core::MainMemoryKind kind, bool llc, u32 stride) {
  core::HulkVSoc soc(make_config(kind, llc));
  constexpr u32 kReads = 1024;
  constexpr u32 kRounds = 10;
  const std::array<u64, 1> args = {core::layout::kSharedBase};
  kernels::run_host_program(
      soc, kernels::host_stride_reads(stride, kReads, 2).words, args);
  const auto run = kernels::run_host_program(
      soc, kernels::host_stride_reads(stride, kReads, kRounds).words, args);
  auto& d = soc.host().dcache().stats();
  const double accesses =
      static_cast<double>(d.get("reads") + d.get("writes"));
  return {accesses == 0 ? 0
                        : static_cast<double>(d.get("misses")) / accesses,
          static_cast<double>(run.cycles) / (double{kReads} * kRounds)};
}

}  // namespace

int main(int argc, char** argv) {
  namespace report = hulkv::report;
  const report::BenchOptions options = report::parse_bench_args(argc, argv);

  report::MetricsReport rep("fig7_llc_sweep");
  rep.add_note("Fig. 7 — Sweep on Last Level Cache (synthetic benchmark). "
               "Primary sweep: cycles/read vs L1 miss ratio "
               "(thrash window 64 kB).");

  report::Table& mixed = rep.add_table(
      "cycles per read vs L1 miss ratio",
      {"l1_miss_pct", "ddr4_llc", "hyper_llc", "ddr4", "hyper",
       "hyper_over_ddr4_no_llc"});
  double max_no_llc_ratio = 0;
  for (const u32 miss_slots : {0u, 2u, 4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    const Point p1 = run_mixed(core::MainMemoryKind::kDdr4, true, miss_slots);
    const Point p2 =
        run_mixed(core::MainMemoryKind::kHyperRam, true, miss_slots);
    const Point p3 =
        run_mixed(core::MainMemoryKind::kDdr4, false, miss_slots);
    const Point p4 =
        run_mixed(core::MainMemoryKind::kHyperRam, false, miss_slots);
    const double ratio = p4.cycles_per_read / p3.cycles_per_read;
    max_no_llc_ratio = std::max(max_no_llc_ratio, ratio);
    mixed.add_row({report::Value::number(100.0 * p2.miss_ratio, 1),
                   report::Value::number(p1.cycles_per_read, 2),
                   report::Value::number(p2.cycles_per_read, 2),
                   report::Value::number(p3.cycles_per_read, 2),
                   report::Value::number(p4.cycles_per_read, 2),
                   report::Value::number(ratio, 2)});
  }

  report::Table& strided = rep.add_table(
      "footprint scan (1024 reads x stride)",
      {"stride", "footprint_kb", "ddr4_llc", "hyper_llc", "ddr4", "hyper"});
  for (const u32 stride : {4u, 16u, 64u, 128u, 256u, 512u, 1024u}) {
    const Point p1 = run_stride(core::MainMemoryKind::kDdr4, true, stride);
    const Point p2 =
        run_stride(core::MainMemoryKind::kHyperRam, true, stride);
    const Point p3 = run_stride(core::MainMemoryKind::kDdr4, false, stride);
    const Point p4 =
        run_stride(core::MainMemoryKind::kHyperRam, false, stride);
    strided.add_row({report::Value::uinteger(stride),
                     report::Value::uinteger(stride),
                     report::Value::number(p1.cycles_per_read, 2),
                     report::Value::number(p2.cycles_per_read, 2),
                     report::Value::number(p3.cycles_per_read, 2),
                     report::Value::number(p4.cycles_per_read, 2)});
  }

  rep.add_metric("max_hyper_over_ddr4_no_llc",
                 report::Value::number(max_no_llc_ratio, 2), "x");
  rep.add_note("Shape check (paper): with the LLC, the HyperRAM "
               "configuration tracks DDR4 at every miss ratio; without it, "
               "the gap grows with the miss ratio, and below ~50% L1 "
               "misses DDR4 brings no benefit over HyperRAM.");
  report::finish_bench(rep, options);
  return 0;
}
