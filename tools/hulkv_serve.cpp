// hulkv-serve: the simulation-as-a-service daemon (DESIGN.md §16).
//
// Serves run/sweep/suite simulation requests over a Unix or TCP socket
// from a warm-snapshot worker pool with result caching and admission
// control. SIGINT/SIGTERM shut down gracefully: in-flight requests
// drain (bounded by --drain-ms), every admitted request is answered,
// the telemetry manifest is flushed, and the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>

#include "common/cli.hpp"
#include "serve/server.hpp"

namespace {

hulkv::serve::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hulkv;

  serve::ServerConfig config;
  u32 port = 0;
  bool telemetry = false;
  std::string telemetry_dir;
  bool help = false;
  cli::Parser parser(
      "hulkv-serve",
      "simulation-as-a-service daemon: run/sweep/suite requests over a "
      "socket, warm-snapshot forking, result cache, admission control");
  parser.add_string("--socket", &config.unix_path,
                    "serve on a unix socket at this path");
  parser.add_u32("--port", &port,
                 "serve on 127.0.0.1:PORT (0 = kernel-assigned; ignored "
                 "when --socket is given)");
  parser.add_u32("--workers", &config.workers, "simulation worker threads");
  parser.add_u32("--queue", &config.queue_capacity,
                 "bounded point-queue capacity (admission fast-reject)");
  parser.add_u32("--quota", &config.client_quota,
                 "max in-flight requests per client id");
  parser.add_u32("--drain-ms", &config.drain_ms,
                 "graceful-shutdown drain bound in milliseconds");
  parser.add_optional_value("--telemetry", &telemetry, &telemetry_dir,
                            "append a run manifest on shutdown "
                            "(--telemetry=DIR, default runs)");
  bool no_obs = false;
  parser.add_flag("--no-obs", &no_obs,
                  "disable request tracing (kMetrics/kTrace still "
                  "answer, with empty stage histograms)");
  parser.add_u32("--trace-ring", &config.trace_ring,
                 "completed-request trace ring capacity (kTrace)");
  parser.add_u32("--slow-ms", &config.slow_ms,
                 "log requests slower than this as one JSON line each "
                 "(0 = off)");
  parser.add_string("--slow-log", &config.slow_log_path,
                    "slow-request log file (default: stderr)");
  parser.add_flag("--help", &help, "show this help");
  if (!parser.parse(argc, argv)) {
    std::fprintf(stderr, "hulkv-serve: %s\n%s", parser.error().c_str(),
                 parser.usage().c_str());
    return 2;
  }
  if (help) {
    std::fputs(parser.usage().c_str(), stdout);
    return 0;
  }
  if (port > 65535) {
    std::fprintf(stderr, "hulkv-serve: --port out of range\n");
    return 2;
  }
  config.tcp_port = static_cast<u16>(port);
  config.obs = !no_obs;
  if (telemetry) {
    config.telemetry_dir = telemetry_dir.empty() ? "runs" : telemetry_dir;
  }

  try {
    serve::Server server(config);
    server.start();
    g_server = &server;
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    // Readiness line on stdout: scripts and tests wait for it before
    // connecting (the port is kernel-assigned in --port 0 mode).
    if (!config.unix_path.empty()) {
      std::printf("[serve] listening on unix:%s\n",
                  config.unix_path.c_str());
    } else {
      std::printf("[serve] listening on tcp:127.0.0.1:%u\n",
                  server.tcp_port());
    }
    std::fflush(stdout);

    server.wait_until_stop_requested();
    server.stop();
    g_server = nullptr;
    std::printf("[serve] shut down cleanly\n");
    return 0;
  } catch (const SimError& e) {
    std::fprintf(stderr, "hulkv-serve: %s\n", e.what());
    return 1;
  }
}
