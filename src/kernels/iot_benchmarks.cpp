#include "kernels/iot_benchmarks.hpp"

#include "isa/assembler.hpp"

namespace hulkv::kernels {

using isa::Assembler;
using isa::Op;
using namespace isa::reg;

namespace {

void emit_exit(Assembler& a) {
  a.li(a7, 93);
  a.li(a0, 0);
  a.ecall();
}

Assembler make_host_asm() {
  return Assembler(core::layout::kHostCodeBase, /*rv64=*/true);
}

}  // namespace

KernelProgram host_crc32(u32 n) {
  Assembler a = make_host_asm();
  // All 32-bit values are kept sign-extended (RV64 *W convention) so the
  // xor/and algebra stays consistent; srliw performs the logical shift.
  a.li(t0, -1);  // crc = 0xFFFF_FFFF (sign-extended)
  a.mv(t1, a0);
  a.li(t2, n);
  a.add(t2, t2, a0);  // end pointer
  a.label("loop");
  a.lbu(t3, 0, t1);
  a.rr(Op::kXor, t3, t3, t0);
  a.andi(t3, t3, 0xFF);
  a.slli(t3, t3, 2);
  a.add(t3, t3, a1);
  a.lw(t4, 0, t3);  // table[(crc ^ byte) & 0xFF]
  a.ri(Op::kSrliw, t0, t0, 8);
  a.rr(Op::kXor, t0, t0, t4);
  a.addi(t1, t1, 1);
  a.blt(t1, t2, "loop");
  a.xori(t0, t0, -1);  // crc ^= 0xFFFF_FFFF
  a.sw(t0, 0, a2);
  emit_exit(a);
  return finish_program("crc32", Precision::kInt32, a, n);
}

KernelProgram host_shell_sort(u32 n) {
  static constexpr u32 kGaps[] = {1750, 701, 301, 132, 57, 23, 10, 4, 1};
  Assembler a = make_host_asm();
  // Registers: s0=gap*4 s1=i t0=value t1=j t2/t3=ptrs t4=cmp
  u32 block = 0;
  for (const u32 gap : kGaps) {
    if (gap >= n) continue;
    const std::string sfx = "_" + std::to_string(block++);
    a.li(s0, static_cast<i64>(gap) * 4);
    a.li(s1, gap);
    a.label("i_loop" + sfx);
    // value = data[i]
    a.slli(t2, s1, 2);
    a.add(t2, t2, a0);
    a.lw(t0, 0, t2);
    a.mv(t1, t2);  // &data[j], j = i
    a.label("j_loop" + sfx);
    // if (j < gap) done -> pointer form: if (&data[j] - gap*4 < data) done
    a.sub(t3, t1, s0);
    a.blt(t3, a0, "j_done" + sfx);
    a.lw(t4, 0, t3);
    a.bge(t0, t4, "j_done" + sfx);  // data[j-gap] <= value -> stop
    a.sw(t4, 0, t1);                // data[j] = data[j-gap]
    a.mv(t1, t3);                   // j -= gap
    a.j("j_loop" + sfx);
    a.label("j_done" + sfx);
    a.sw(t0, 0, t1);  // data[j] = value
    a.addi(s1, s1, 1);
    a.li(t6, n);
    a.blt(s1, t6, "i_loop" + sfx);
  }
  emit_exit(a);
  // ~n * #gaps element moves as a nominal op count.
  return finish_program("sort", Precision::kInt32, a, static_cast<u64>(n) * 9);
}

KernelProgram host_histogram(u32 n) {
  Assembler a = make_host_asm();
  // Zero the 256 bins.
  a.mv(t1, a1);
  a.li(t2, 256);
  a.label("zero");
  a.sw(zero, 0, t1);
  a.addi(t1, t1, 4);
  a.addi(t2, t2, -1);
  a.bnez(t2, "zero");
  // Stream the data.
  a.mv(t1, a0);
  a.li(t2, n);
  a.add(t2, t2, a0);
  a.label("loop");
  a.lbu(t3, 0, t1);
  a.slli(t3, t3, 2);
  a.add(t3, t3, a1);
  a.lw(t4, 0, t3);
  a.ri(Op::kAddiw, t4, t4, 1);
  a.sw(t4, 0, t3);
  a.addi(t1, t1, 1);
  a.blt(t1, t2, "loop");
  emit_exit(a);
  return finish_program("histogram", Precision::kInt32, a, n);
}

KernelProgram host_strsearch(u32 n, u32 m) {
  Assembler a = make_host_asm();
  // s0=count s1=i-ptr s2=end-of-valid-i t0=j t1..t4 temps
  a.li(s0, 0);
  a.mv(s1, a0);
  a.li(s2, static_cast<i64>(n) - m);
  a.add(s2, s2, a0);  // last valid start + ... inclusive bound
  a.label("outer");
  a.bltu(s2, s1, "done");
  a.li(t0, 0);
  a.label("inner");
  a.li(t5, m);
  a.bge(t0, t5, "match");
  a.add(t1, s1, t0);
  a.lbu(t2, 0, t1);
  a.add(t3, a1, t0);
  a.lbu(t4, 0, t3);
  a.bne(t2, t4, "no_match");
  a.addi(t0, t0, 1);
  a.j("inner");
  a.label("match");
  a.addi(s0, s0, 1);
  a.label("no_match");
  a.addi(s1, s1, 1);
  a.j("outer");
  a.label("done");
  a.sw(s0, 0, a2);
  emit_exit(a);
  return finish_program("strsearch", Precision::kInt32, a, n);
}

KernelProgram host_dhrystone_mix(u32 iters) {
  Assembler a = make_host_asm();
  // The classic Dhrystone flavour: record assignment (8-dword copy),
  // string comparison, integer arithmetic with a division, and a
  // procedure call, per iteration.
  a.li(s0, iters);
  a.j("main");

  // Proc_1(t0) -> t0*3+7 (a leaf call through ra).
  a.label("proc1");
  a.slli(t1, t0, 1);
  a.add(t0, t0, t1);
  a.addi(t0, t0, 7);
  a.ret();

  a.label("main");
  a.li(s1, 0);  // Int_Glob
  a.label("loop");
  // Record assignment: copy 64 bytes buf1 -> buf2.
  for (u32 off = 0; off < 64; off += 8) {
    a.ld(t1, static_cast<i32>(off), a0);
    a.sd(t1, static_cast<i32>(off), a1);
  }
  // String comparison of the copied prefix (always equal -> full scan).
  a.li(t2, 0);
  a.label("strcmp");
  a.add(t3, a0, t2);
  a.lbu(t4, 0, t3);
  a.add(t3, a1, t2);
  a.lbu(t5, 0, t3);
  a.bne(t4, t5, "differs");
  a.addi(t2, t2, 1);
  a.li(t6, 16);
  a.blt(t2, t6, "strcmp");
  a.label("differs");
  // Arithmetic block with a data dependency chain and a division.
  a.addi(s1, s1, 5);
  a.mul(t1, s1, s1);
  a.li(t6, 7);
  a.rr(Op::kDivw, t1, t1, t6);
  a.rr(Op::kAddw, s1, s1, t1);
  a.slli(s1, s1, 48);  // keep Int_Glob in 16 bits (zero-extend)
  a.srli(s1, s1, 48);
  // Procedure call.
  a.mv(t0, s1);
  a.call("proc1");
  a.rr(Op::kAddw, s1, s1, t0);
  a.slli(s1, s1, 48);
  a.srli(s1, s1, 48);
  a.addi(s0, s0, -1);
  a.bnez(s0, "loop");
  emit_exit(a);
  return finish_program("dhrystone", Precision::kInt32, a,
                        static_cast<u64>(iters) * 40);
}

KernelProgram host_stride_reads(u32 stride, u32 count, u32 rounds) {
  HULKV_CHECK(stride % 4 == 0, "stride must be word aligned");
  Assembler a = make_host_asm();
  // s0=round s1=read-index s2=stride t1=ptr t2=sink
  a.li(s0, rounds);
  a.li(s2, stride);
  a.label("round");
  a.mv(t1, a0);
  a.li(s1, count);
  a.label("reads");
  a.lw(t2, 0, t1);
  a.add(t1, t1, s2);
  a.addi(s1, s1, -1);
  a.bnez(s1, "reads");
  a.addi(s0, s0, -1);
  a.bnez(s0, "round");
  emit_exit(a);
  return finish_program("stride", Precision::kInt32, a,
                        static_cast<u64>(count) * rounds);
}

KernelProgram host_mixed_reads(u32 miss_slots, u32 footprint, u32 count,
                               u32 rounds) {
  HULKV_CHECK(miss_slots <= 16, "miss_slots is out of 16");
  HULKV_CHECK((footprint & (footprint - 1)) == 0, "footprint must be pow2");
  Assembler a = make_host_asm();
  // s0=round s1=read s2=slot-counter s3=miss_slots
  // t1=resident offset t2=thrash offset t4=addr t5=sink
  a.li(s3, miss_slots);
  a.li(s0, rounds);
  a.label("round");
  a.li(s1, count);
  a.li(s2, 0);
  a.li(t1, 0);
  a.label("reads");
  a.addi(s2, s2, 1);
  a.andi(s2, s2, 15);
  a.bltu(s2, s3, "miss_read");
  // Resident read: cycle a 2 kB window (L1 hit after warm-up; 2047
  // is the largest mask that fits an andi immediate).
  a.add(t4, a0, t1);
  a.lw(t5, 0, t4);
  a.addi(t1, t1, 64);
  a.andi(t1, t1, 2047);
  a.j("next");
  a.label("miss_read");
  // Thrash read: new line each time over a `footprint` window.
  a.add(t4, a1, t2);
  a.lw(t5, 0, t4);
  a.addi(t2, t2, 64);
  a.li(t6, static_cast<i64>(footprint) - 1);
  a.rr(Op::kAnd, t2, t2, t6);
  a.label("next");
  a.addi(s1, s1, -1);
  a.bnez(s1, "reads");
  a.addi(s0, s0, -1);
  a.bnez(s0, "round");
  emit_exit(a);
  return finish_program("mixed", Precision::kInt32, a,
                        static_cast<u64>(count) * rounds);
}

KernelProgram host_pointer_chase(u32 count) {
  Assembler a = make_host_asm();
  a.mv(t0, a0);
  a.li(t1, count);
  a.label("chase");
  a.ld(t0, 0, t0);  // next = *ptr — fully serialised loads
  a.addi(t1, t1, -1);
  a.bnez(t1, "chase");
  a.mv(a0, t0);  // keep the chain live
  a.li(a7, 93);
  a.ecall();
  return finish_program("chase", Precision::kInt32, a, count);
}

}  // namespace hulkv::kernels
