// Warm-snapshot pool (DESIGN.md §16.4): one immutable SocSnapshot per
// simulation point, captured after the workload's setup and one warm
// run (the steady-state discipline of bench/fig8_llc_effect.cpp —
// caches warm, timed run next). Serving a request forks a fresh SoC
// from the snapshot instead of cold-booting: restore is cycle-exact,
// so the forked timed run retires exactly the cycles the cold path's
// second run would — warm forking changes latency, never results.
//
// Entries build lazily, once, on first use (std::call_once per slot);
// any number of workers may fork from a built entry concurrently
// (SocSnapshot::restore_into is const and reentrant).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "batch/batch.hpp"
#include "serve/workload.hpp"

namespace hulkv::serve {

class WarmPool {
 public:
  struct Entry {
    core::SocConfig config;
    kernels::KernelProgram program;
    std::vector<u64> args;
    batch::SocSnapshot snapshot;
  };

  WarmPool();

  /// The warm entry of `point`, building it (cold boot + setup + warm
  /// run + capture) on first use. Thread-safe; the returned reference
  /// is valid for the pool's lifetime and immutable.
  const Entry& get(const PointParams& point);

  /// Number of entries built so far (each one paid one cold boot).
  u64 cold_builds() const { return cold_builds_.load(); }

 private:
  struct Slot {
    std::once_flag once;
    Entry entry;
  };

  size_t slot_index(const PointParams& point) const;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<u64> cold_builds_{0};
};

}  // namespace hulkv::serve
