#include "mem/rpcdram.hpp"

#include <algorithm>

#include "common/bitutil.hpp"

namespace hulkv::mem {

RpcDramModel::RpcDramModel(const RpcDramConfig& config)
    : config_(config),
      next_refresh_(config.refresh_period),
      open_row_(config.num_banks, -1),
      stats_("rpcdram") {
  HULKV_CHECK(config.num_banks >= 1, "RPC DRAM needs banks");
  HULKV_CHECK(is_pow2(config.row_bytes), "row size must be a power of two");
  HULKV_CHECK(config.clk_div >= 1, "bus clock divider must be >= 1");
}

Cycles RpcDramModel::access(Cycles now, Addr addr, u32 bytes,
                            bool is_write) {
  HULKV_CHECK(bytes > 0, "zero-length RPC DRAM access");
  stats_.increment(is_write ? "writes" : "reads");
  stats_.add(is_write ? "bytes_written" : "bytes_read", bytes);

  u64 offset = addr % config_.total_bytes;
  Cycles t = std::max(now, busy_until_);
  const Cycles start = t;
  const u64 bursts_before = stats_.get("bursts");
  const u64 refresh_before = stats_.get("refresh_collisions");
  u32 remaining = bytes;
  while (remaining > 0) {
    const u64 to_row_end = config_.row_bytes - (offset % config_.row_bytes);
    const u32 chunk = static_cast<u32>(std::min<u64>(
        {remaining, to_row_end, config_.max_burst_bytes}));
    t = burst(t, offset, chunk);
    offset += chunk;
    remaining -= chunk;
  }
  busy_until_ = t;
  stats_.add("busy_cycles", t - start);
  if (trace::enabled()) {
    auto& sink = trace::sink();
    trace::XactArg xarg;
    xarg.write = is_write;
    xarg.bursts = static_cast<u32>(stats_.get("bursts") - bursts_before);
    xarg.refresh_collisions =
        static_cast<u32>(stats_.get("refresh_collisions") - refresh_before);
    sink.complete(sink.resolve(trace_track_, stats_.name()),
                  trace::Ev::kMemXact, start, t, bytes,
                  trace::pack_xact_arg(xarg));
  }
  return t;
}

Cycles RpcDramModel::burst(Cycles start, Addr addr, u32 bytes) {
  stats_.increment("bursts");
  u32 bus_clocks = config_.t_cmd_bus_clk;

  // Row-buffer management.
  const u32 bank = bank_of(addr);
  const i64 row = static_cast<i64>(row_of(addr));
  if (open_row_[bank] != row) {
    if (open_row_[bank] >= 0) {
      bus_clocks += config_.t_rp_bus_clk;  // precharge the old row
      stats_.increment("row_conflicts");
    }
    bus_clocks += config_.t_rcd_bus_clk;  // activate
    stats_.increment("row_activations");
    open_row_[bank] = row;
  } else {
    stats_.increment("row_hits");
  }

  // Refresh collision (same mechanism as the HyperRAM model).
  if (start >= next_refresh_) {
    bus_clocks += config_.refresh_extra_bus_clk;
    stats_.increment("refresh_collisions");
    while (next_refresh_ <= start) next_refresh_ += config_.refresh_period;
  }

  // 16-bit DDR data phase: 4 bytes per bus clock.
  bus_clocks += static_cast<u32>(ceil_div(bytes, 4));
  return start + static_cast<Cycles>(bus_clocks) * config_.clk_div;
}

void RpcDramModel::reset() {
  busy_until_ = 0;
  next_refresh_ = config_.refresh_period;
  open_row_.assign(config_.num_banks, -1);
  stats_.reset();
}

void RpcDramModel::serialize(snapshot::Archive& ar) {
  ar.pod(busy_until_);
  ar.pod(next_refresh_);
  ar.pod_vec(open_row_);
  stats_.serialize(ar);
}

}  // namespace hulkv::mem
