#!/usr/bin/env bash
# Capture a simulator-performance baseline: run the bench/simperf
# microbenchmarks and write google-benchmark's JSON to
# BENCH_simperf.json (repo root by default). The checked-in baseline is
# what `make simperf-check` (scripts/simperf_check.sh) compares against
# to catch simulator hot-path regressions.
#
# Re-baseline (run this script and commit the JSON) after intentional
# perf changes or when moving to different reference hardware.
#
# Usage: scripts/simperf_baseline.sh [output-file]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
out="${1:-$repo_root/BENCH_simperf.json}"

if [ ! -x "$build_dir/bench/simperf" ]; then
  echo "error: $build_dir/bench/simperf not found. Build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

# Carry the dated headline-metrics history across the refresh: the old
# baseline's history array survives into the new file, with today's
# fresh numbers appended below. `hulkv-stats trend` reads this to show
# how the reference machine's simulator throughput moved over time.
prev_history="$(mktemp /tmp/simperf_history.XXXXXX.json)"
trap 'rm -f "$prev_history"' EXIT
if [ -f "$out" ]; then
  python3 - "$out" > "$prev_history" << 'EOF'
import json
import sys

try:
    with open(sys.argv[1]) as f:
        data = json.load(f)
except (OSError, ValueError):
    data = {}
json.dump(data.get("history", []), sys.stdout)
EOF
else
  echo "[]" > "$prev_history"
fi

# --benchmark_out keeps the JSON separate from simperf's MetricsReport
# text on stdout. Repetitions smooth scheduler noise; the aggregate
# (median) rows are what the regression check reads.
"$build_dir/bench/simperf" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true

# Append today's headline metrics (median instr/s of the ISS loops) to
# the carried-forward history. The check script's reader only looks at
# the google-benchmark "benchmarks" array, so the extra top-level key is
# backward-compatible.
python3 - "$out" "$prev_history" "$(date -u +%Y-%m-%d)" << 'EOF'
import json
import sys

out_path, history_path, today = sys.argv[1], sys.argv[2], sys.argv[3]
with open(out_path) as f:
    data = json.load(f)
with open(history_path) as f:
    history = json.load(f)

metrics = {}
for run in data.get("benchmarks", []):
    if run.get("aggregate_name", "") not in ("", "median"):
        continue
    rate = run.get("instr/s")
    if rate is None:
        continue
    name = run.get("run_name", run["name"])
    if run.get("aggregate_name") == "median" or name not in metrics:
        metrics[name] = rate

# One entry per refresh date: a same-day re-run replaces today's entry
# instead of stacking noise.
history = [e for e in history if e.get("date") != today]
history.append({"date": today, "metrics": metrics})
data["history"] = history

with open(out_path, "w") as f:
    json.dump(data, f, indent=1)
    f.write("\n")
print(f"simperf_baseline: history now has {len(history)} dated entries")
EOF

echo
echo "simperf_baseline: wrote $out"
