// Tests for the extensions beyond the paper's evaluated configurations:
// the RPC-DRAM-backed SoC, the SV39 TLB model, the UART peripheral, and
// the voltage/frequency corner model.
#include <gtest/gtest.h>

#include "core/soc.hpp"
#include "host/tlb.hpp"
#include "host/uart.hpp"
#include "isa/assembler.hpp"
#include "kernels/iot_benchmarks.hpp"
#include "kernels/kernel.hpp"
#include "power/power_model.hpp"

namespace hulkv {
namespace {

using isa::Assembler;
using isa::Op;
using namespace isa::reg;

// ---------------------------------------------------------------------
// RPC DRAM as main memory.
// ---------------------------------------------------------------------

TEST(RpcDramSoc, BootsAndRunsPrograms) {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kRpcDram;
  core::HulkVSoc soc(cfg);
  ASSERT_NE(soc.rpcdram(), nullptr);
  EXPECT_EQ(soc.hyperram(), nullptr);

  Assembler a(core::layout::kHostCodeBase, true);
  a.li(a0, 7);
  a.li(a7, 93);
  a.ecall();
  EXPECT_EQ(kernels::run_host_program(soc, a.assemble(), {}).exit_code, 7u);
  EXPECT_GT(soc.rpcdram()->stats().get("reads"), 0u);  // code fetch refills
}

TEST(RpcDramSoc, SitsBetweenHyperAndDdrOnStreams) {
  auto run = [](core::MainMemoryKind kind) {
    core::SocConfig cfg;
    cfg.main_memory = kind;
    cfg.enable_llc = false;
    core::HulkVSoc soc(cfg);
    const std::array<u64, 1> args = {core::layout::kSharedBase};
    const auto prog = kernels::host_stride_reads(64, 1024, 6);
    return kernels::run_host_program(soc, prog.words, args).cycles;
  };
  const Cycles hyper = run(core::MainMemoryKind::kHyperRam);
  const Cycles rpc = run(core::MainMemoryKind::kRpcDram);
  const Cycles ddr = run(core::MainMemoryKind::kDdr4);
  EXPECT_LT(ddr, rpc);
  EXPECT_LT(rpc, hyper);
}

// ---------------------------------------------------------------------
// TLB / SV39 model.
// ---------------------------------------------------------------------

TEST(TlbModel, HitsAreFreeMissesWalk) {
  u32 walks = 0;
  host::Tlb tlb({.entries = 2},
                [&walks](Cycles now, Addr) {
                  ++walks;
                  return now + 10;
                });
  // First touch of a page: 3-level walk = 30 cycles.
  EXPECT_EQ(tlb.translate(0, 0x8000'0000), 30u);
  EXPECT_EQ(walks, 3u);
  // Same page: hit, no cost.
  EXPECT_EQ(tlb.translate(100, 0x8000'0FFF), 100u);
  EXPECT_EQ(walks, 3u);
  // Two more pages evict the first (2 entries, LRU).
  tlb.translate(200, 0x8000'1000);
  tlb.translate(300, 0x8000'2000);
  EXPECT_EQ(walks, 9u);
  EXPECT_GT(tlb.translate(400, 0x8000'0000), 400u);  // walked again
  EXPECT_EQ(tlb.stats().get("misses"), 4u);
  EXPECT_EQ(tlb.stats().get("hits"), 1u);
}

TEST(TlbModel, FlushDropsEverything) {
  host::Tlb tlb({}, [](Cycles now, Addr) { return now + 1; });
  tlb.translate(0, 0x8000'0000);
  EXPECT_EQ(tlb.translate(10, 0x8000'0000), 10u);  // hit
  tlb.flush();
  EXPECT_GT(tlb.translate(20, 0x8000'0000), 20u);  // walks again
}

TEST(TlbModel, RejectsBadConfig) {
  EXPECT_THROW(host::Tlb bad({.entries = 0},
                             [](Cycles now, Addr) { return now; }),
               SimError);
  EXPECT_THROW(host::Tlb bad2({}, nullptr), SimError);
}

TEST(TlbInCore, MmuCostsCyclesButPreservesResults) {
  auto run = [](bool mmu) {
    core::SocConfig cfg;
    cfg.main_memory = core::MainMemoryKind::kDdr4;
    cfg.host.enable_mmu = mmu;
    core::HulkVSoc soc(cfg);
    // Touch 64 pages once each (worst case for the TLB).
    Assembler a(core::layout::kHostCodeBase, true);
    a.li(t0, core::layout::kSharedBase);
    a.li(t1, 64);
    a.label("loop");
    a.lw(t2, 0, t0);
    a.li(t3, 4096);
    a.add(t0, t0, t3);
    a.addi(t1, t1, -1);
    a.bnez(t1, "loop");
    a.li(a7, 93);
    a.li(a0, 55);
    a.ecall();
    const auto result = kernels::run_host_program(soc, a.assemble(), {});
    EXPECT_EQ(result.exit_code, 55u);
    return result.cycles;
  };
  const Cycles bare = run(false);
  const Cycles paged = run(true);
  EXPECT_GT(paged, bare);  // 64+ page walks are visible
}

// ---------------------------------------------------------------------
// UART.
// ---------------------------------------------------------------------

TEST(UartModel, CollectsTransmittedBytes) {
  host::Uart uart;
  EXPECT_EQ(uart.mmio_read(host::Uart::kLsr, 4), host::Uart::kLsrTxIdle);
  for (const char c : std::string("HULK"))
    uart.mmio_write(host::Uart::kThr, static_cast<u64>(c), 4);
  EXPECT_EQ(uart.output(), "HULK");
  uart.clear();
  EXPECT_TRUE(uart.output().empty());
}

TEST(UartInSoc, GuestProgramPrintsThroughMmio) {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  core::HulkVSoc soc(cfg);
  // Guest putc loop: poll LSR, then write THR — the real earlycon path.
  const std::string message = "hello uart";
  Assembler a(core::layout::kHostCodeBase, true);
  a.li(t0, core::apbmap::kUartBase);
  for (size_t i = 0; i < message.size(); ++i) {
    const std::string wait = "wait_" + std::to_string(i);
    a.label(wait);
    a.lw(t1, static_cast<i32>(host::Uart::kLsr), t0);
    a.andi(t1, t1, 0x20);  // THR empty bit
    a.beqz(t1, wait);
    a.li(t2, message[i]);
    a.sw(t2, static_cast<i32>(host::Uart::kThr), t0);
  }
  a.li(a7, 93);
  a.li(a0, 0);
  a.ecall();
  kernels::run_host_program(soc, a.assemble(), {});
  EXPECT_EQ(soc.uart().output(), message);
}

// ---------------------------------------------------------------------
// Peripheral uDMA (I2S/CPI/SPI streams into the L2SPM).
// ---------------------------------------------------------------------

TEST(PeriphUdma, RxStreamsLandInL2AtTheDeviceRate) {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  core::HulkVSoc soc(cfg);
  soc.plic().mmio_write(4 * core::kPeriphIrqSource, 1, 4);
  soc.plic().mmio_write(host::Plic::kEnableOffset,
                        1u << core::kPeriphIrqSource, 4);

  std::vector<u8> samples(1024);
  for (u32 i = 0; i < samples.size(); ++i) samples[i] = static_cast<u8>(i);
  // An I2S-class device: 1 byte every 4 SoC cycles.
  const Cycles done = soc.periph_udma().start_rx(
      100, mem::map::kL2Base + 0x8000, samples, 0.25);
  EXPECT_GE(done, 100u + 4 * 1024);  // stream-rate bound
  EXPECT_TRUE(soc.plic().interrupt_pending());

  std::vector<u8> got(samples.size());
  soc.read_mem(mem::map::kL2Base + 0x8000, got.data(), got.size());
  EXPECT_EQ(got, samples);
}

TEST(PeriphUdma, TxReadsL2AndLogs) {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  core::HulkVSoc soc(cfg);
  const std::string message = "sensor-frame-7";
  soc.write_mem(mem::map::kL2Base + 0x100, message.data(), message.size());
  const Cycles done = soc.periph_udma().start_tx(
      0, mem::map::kL2Base + 0x100, static_cast<u32>(message.size()), 0.5);
  EXPECT_GE(done, message.size() * 2);
  EXPECT_EQ(soc.periph_udma().tx_log(), message);
}

TEST(PeriphUdma, RejectsNonL2Targets) {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  core::HulkVSoc soc(cfg);
  std::vector<u8> data(16);
  EXPECT_THROW(
      soc.periph_udma().start_rx(0, core::layout::kSharedBase, data, 1.0),
      SimError);
  EXPECT_THROW(soc.periph_udma().start_tx(0, mem::map::kL2Base, 0, 1.0),
               SimError);
}

// ---------------------------------------------------------------------
// Operating points.
// ---------------------------------------------------------------------

TEST(Corners, VoltageScalingOrdersPower) {
  const power::PowerModel model;
  const auto total_at = [&](const power::OperatingPoint& op) {
    double total = 0;
    for (const auto* block : model.blocks()) {
      total += power::block_power_mw(*block, op,
                                     block->max_freq_mhz * op.freq_scale);
    }
    return total;
  };
  const double ssg = total_at(power::worst_ssg());
  const double tt = total_at(power::typical_tt());
  const double od = total_at(power::overdrive());
  EXPECT_LT(ssg, tt);
  EXPECT_LT(tt, od);
  // The typical corner reproduces Table II exactly.
  EXPECT_NEAR(tt, model.total_max_power_mw(), 1e-9);
}

TEST(Corners, DynamicScalesQuadratically) {
  power::OperatingPoint op = power::typical_tt();
  op.voltage = 1.6;  // 2x the nominal 0.8 V
  EXPECT_NEAR(op.dynamic_scale(), 4.0, 1e-12);
}

}  // namespace
}  // namespace hulkv
