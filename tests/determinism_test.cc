// Cross-run determinism regression tests.
//
// The simulator must be a pure function of its inputs: two runs of the
// same workload — in one process, across processes, or across worker
// counts — produce identical cycle counts, digests and bench output.
// This pins down the cross-run state-bleed class of bug (a static or
// global that survives into the next Soc).
#include <gtest/gtest.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/soc.hpp"
#include "kernels/iot_benchmarks.hpp"

namespace {

using namespace hulkv;

// Bench/example binary locations, injected by tests/CMakeLists.txt.
#ifndef HULKV_BENCH_DIR
#define HULKV_BENCH_DIR "."
#endif
#ifndef HULKV_EXAMPLES_DIR
#define HULKV_EXAMPLES_DIR "."
#endif

/// Run a command, discard stderr (logs go there), return stdout.
std::string run_stdout(const std::string& cmd) {
  const std::string full = cmd + " 2>/dev/null";
  FILE* pipe = popen(full.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << full;
  if (pipe == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    out.append(buf, n);
  }
  const int rc = pclose(pipe);
  EXPECT_EQ(rc, 0) << full;
  return out;
}

struct RunResult {
  Cycles cycles;
  u64 digest;
};

RunResult run_workload() {
  core::SocConfig cfg;
  core::HulkVSoc soc(cfg);
  const auto prog = kernels::host_stride_reads(256, 1024, 5);
  const Cycles cycles =
      kernels::run_host_program(
          soc, prog.words, std::array<u64, 1>{core::layout::kSharedBase})
          .cycles;
  return {cycles, soc.state_digest()};
}

TEST(Determinism, RepeatedInProcessRunsAreIdentical) {
  const RunResult first = run_workload();
  const RunResult second = run_workload();
  EXPECT_EQ(first.cycles, second.cycles);
  EXPECT_EQ(first.digest, second.digest);
}

TEST(Determinism, Fig7RunTwiceIsByteIdentical) {
  const std::string cmd = std::string(HULKV_BENCH_DIR) + "/fig7_llc_sweep";
  const std::string first = run_stdout(cmd);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, run_stdout(cmd));
}

TEST(Determinism, Fig7OutputIndependentOfWorkerCount) {
  const std::string cmd = std::string(HULKV_BENCH_DIR) + "/fig7_llc_sweep";
  const std::string serial = run_stdout(cmd + " --jobs 1");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_stdout(cmd + " --jobs 4"));
}

TEST(Determinism, AblationMemsysRunTwiceIsByteIdentical) {
  const std::string cmd = std::string(HULKV_BENCH_DIR) + "/ablation_memsys";
  const std::string first = run_stdout(cmd);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, run_stdout(cmd));
}

TEST(Determinism, MemsysExplorerOutputIndependentOfWorkerCount) {
  const std::string cmd =
      std::string(HULKV_EXAMPLES_DIR) + "/memsys_explorer 128";
  const std::string serial = run_stdout(cmd + " --jobs 1");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, run_stdout(cmd + " --jobs 4"));
}

TEST(Determinism, TelemetryDoesNotPerturbBenchStdout) {
  // The telemetry layer's contract (DESIGN.md §14): spans, sweep stats
  // and the run manifest never touch stdout or simulated timing, so a
  // bench's stdout is byte-identical with telemetry on or off. The
  // manifest goes to a scratch dir (and must actually appear there).
  char tmpl[] = "/tmp/hulkv_det_telemetry.XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string cmd = std::string(HULKV_BENCH_DIR) + "/fig8_llc_effect";
  const std::string off = run_stdout(cmd);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, run_stdout(cmd + " --telemetry=" + dir));

  const std::string manifest = dir + "/fig8_llc_effect.jsonl";
  FILE* f = std::fopen(manifest.c_str(), "r");
  ASSERT_NE(f, nullptr) << "missing run manifest " << manifest;
  std::fclose(f);
  std::remove(manifest.c_str());
  rmdir(dir.c_str());
}

}  // namespace
