// Perfetto / Chrome `trace_event` JSON export of a TraceSink.
//
// The output is the JSON-object form ({"traceEvents": [...]}) that both
// chrome://tracing and https://ui.perfetto.dev load directly. Every
// interned track renders as one named thread (pid 1), so the SoC shows
// up as parallel swimlanes: host core, PMCA cores, caches, memories,
// DMAs and the offload runtime.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace hulkv::trace {

/// Export options. `cycles_per_us` converts the cycle timebase into the
/// microsecond timestamps the viewers expect; the default maps one cycle
/// to 1 us which keeps integer cycle numbers readable in the UI.
///
/// `host_spans` additionally exports the telemetry registry's retained
/// host wall-clock spans (program load/analyze, block translate,
/// dispatch chunks, snapshot ops, batch jobs) as a second process
/// (pid 2, "hulkv-host") with one swimlane per host thread. Host spans
/// are real nanoseconds, not simulated cycles — the two processes run
/// on different clocks, anchored by a `clock_anchor` event carrying the
/// wall-epoch/steady-clock offset pair taken when telemetry was
/// enabled. A no-op when telemetry never collected.
struct ChromeTraceOptions {
  double cycles_per_us = 1.0;
  bool host_spans = true;
};

/// Write the whole sink as Chrome trace_event JSON.
void write_chrome_trace(std::ostream& os, const TraceSink& sink,
                        const ChromeTraceOptions& options = {});

/// Convenience file writer. Throws SimError when the file cannot be
/// opened.
void write_chrome_trace_file(const std::string& path, const TraceSink& sink,
                             const ChromeTraceOptions& options = {});

}  // namespace hulkv::trace
