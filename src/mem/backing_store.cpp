#include "mem/backing_store.hpp"

#include <algorithm>

#include "snapshot/archive.hpp"

namespace hulkv::mem {

void BackingStore::serialize(snapshot::Archive& ar) {
  if (ar.loading()) {
    clear();
    u64 count = 0;
    ar.pod(count);
    for (u64 i = 0; i < count; ++i) {
      u64 page = 0;
      ar.pod(page);
      std::vector<u8>& data = pages_[page];
      data.resize(kPageBytes);
      ar.bytes(data.data(), kPageBytes);
    }
    return;
  }
  u64 count = pages_.size();
  ar.pod(count);
  std::vector<u64> order;
  order.reserve(pages_.size());
  for (const auto& entry : pages_) order.push_back(entry.first);
  std::sort(order.begin(), order.end());
  for (u64 page : order) {
    ar.pod(page);
    ar.bytes(pages_.at(page).data(), kPageBytes);
  }
}

std::vector<u8>& BackingStore::page_for(Addr addr) {
  auto& page = pages_[addr / kPageBytes];
  if (page.empty()) page.resize(kPageBytes, 0);
  fill_slot(addr / kPageBytes, page.data());
  return page;
}

const std::vector<u8>* BackingStore::find_page(Addr addr) const {
  auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : &it->second;
}

void BackingStore::read_slow(Addr addr, void* dst, u64 len) const {
  u8* out = static_cast<u8*>(dst);
  while (len > 0) {
    const u64 in_page = addr % kPageBytes;
    const u64 chunk = std::min(len, kPageBytes - in_page);
    ++ptr_cache_misses_;
    if (const std::vector<u8>* page = find_page(addr)) {
      std::memcpy(out, page->data() + in_page, chunk);
      fill_slot(addr / kPageBytes,
                const_cast<u8*>(page->data()));  // refill translation slot
    } else {
      std::memset(out, 0, chunk);
      fill_slot(addr / kPageBytes, nullptr);
    }
    addr += chunk;
    out += chunk;
    len -= chunk;
  }
}

void BackingStore::write_slow(Addr addr, const void* src, u64 len) {
  const u8* in = static_cast<const u8*>(src);
  while (len > 0) {
    const u64 in_page = addr % kPageBytes;
    const u64 chunk = std::min(len, kPageBytes - in_page);
    ++ptr_cache_misses_;
    std::memcpy(page_for(addr).data() + in_page, in, chunk);  // fills slot
    addr += chunk;
    in += chunk;
    len -= chunk;
  }
}

}  // namespace hulkv::mem
