// hulkv::trace: sink semantics, cycle parity with tracing off/on,
// Perfetto/Chrome export well-formedness, windowed aggregation vs
// StatGroup totals, and the power-over-time energy integral.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"
#include "core/soc.hpp"
#include "isa/assembler.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/host_kernels.hpp"
#include "kernels/kernel.hpp"
#include "power/power_trace.hpp"
#include "runtime/offload.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"
#include "trace/windowed.hpp"

namespace hulkv {
namespace {

/// Isolates a test's use of the process-global sink.
struct TraceGuard {
  TraceGuard() {
    trace::sink().clear();
    trace::sink().enable();
  }
  ~TraceGuard() {
    trace::sink().disable();
    trace::sink().clear();
  }
};

// ---------------------------------------------------------------------
// Sink semantics
// ---------------------------------------------------------------------

TEST(TraceSink, DisabledByDefault) { EXPECT_FALSE(trace::enabled()); }

TEST(TraceSink, RecordsAndTimestampsAreMonotonePerEmitter) {
  TraceGuard guard;
  auto& sink = trace::sink();
  const u32 track = sink.track("t0");
  sink.instant(track, trace::Ev::kMiss, 10, 1);
  sink.complete(track, trace::Ev::kRun, 20, 120, 7);
  sink.counter(track, trace::Ev::kCommitBatch, 50, 256);
  ASSERT_EQ(sink.events().size(), 3u);
  EXPECT_EQ(sink.events()[0].ts, 10u);
  EXPECT_EQ(sink.events()[1].dur, 100u);
  EXPECT_EQ(sink.events()[2].value, 256u);
  // Emission order is preserved and max_timestamp tracks event *ends*.
  EXPECT_EQ(sink.max_timestamp(), 120u);
  sink.instant(track, trace::Ev::kMiss, 60);
  EXPECT_EQ(sink.max_timestamp(), 120u);  // earlier instant cannot regress it
}

TEST(TraceSink, CompleteClampsReversedInterval) {
  TraceGuard guard;
  auto& sink = trace::sink();
  sink.complete(sink.track("t"), trace::Ev::kDmaJob, 100, 40);
  EXPECT_EQ(sink.events()[0].dur, 0u);
}

TEST(TraceSink, TrackInterningIsStable) {
  TraceGuard guard;
  auto& sink = trace::sink();
  const u32 a = sink.track("alpha");
  const u32 b = sink.track("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(sink.track("alpha"), a);
  EXPECT_EQ(sink.find_track("beta"), b);
  EXPECT_EQ(sink.find_track("gamma"), trace::kNoTrack);
}

TEST(TraceSink, HandleResolvesOnceAndSurvivesClear) {
  TraceGuard guard;
  auto& sink = trace::sink();
  trace::TrackHandle handle;
  const u32 id = sink.resolve(handle, "block");
  EXPECT_EQ(sink.resolve(handle, "block"), id);
  sink.clear();  // invalidates all track ids
  EXPECT_EQ(sink.find_track("block"), trace::kNoTrack);
  const u32 fresh = sink.resolve(handle, "block");  // re-interns
  EXPECT_EQ(sink.find_track("block"), fresh);
}

TEST(TraceSink, CapacityCapCountsDrops) {
  TraceGuard guard;
  auto& sink = trace::sink();
  sink.set_capacity(4);
  const u32 track = sink.track("t");
  for (int i = 0; i < 10; ++i) {
    sink.instant(track, trace::Ev::kMiss, static_cast<Cycles>(i));
  }
  EXPECT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  sink.set_capacity(size_t{4} << 20);  // restore the default
}

TEST(TraceSink, XactArgRoundTrips) {
  const trace::XactArg arg{true, 123, 45};
  const trace::XactArg back = trace::unpack_xact_arg(trace::pack_xact_arg(arg));
  EXPECT_EQ(back.write, arg.write);
  EXPECT_EQ(back.bursts, arg.bursts);
  EXPECT_EQ(back.refresh_collisions, arg.refresh_collisions);
}

// ---------------------------------------------------------------------
// Windowed aggregation (synthetic)
// ---------------------------------------------------------------------

TEST(Windowed, SplitsDurationsAcrossWindowBoundaries) {
  TraceGuard guard;
  auto& sink = trace::sink();
  const u32 track = sink.track("t");
  sink.complete(track, trace::Ev::kRun, 500, 1500);
  const trace::Windowed agg = trace::aggregate(sink, 400);
  ASSERT_EQ(agg.num_windows, 4u);
  const trace::Series* s = agg.series(track, trace::Ev::kRun);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->busy[0], 0u);
  EXPECT_EQ(s->busy[1], 300u);  // [500, 800)
  EXPECT_EQ(s->busy[2], 400u);  // [800, 1200)
  EXPECT_EQ(s->busy[3], 300u);  // [1200, 1500)
  EXPECT_EQ(agg.total_busy(track, trace::Ev::kRun), 1000u);
  EXPECT_EQ(agg.total_count(track, trace::Ev::kRun), 1u);
}

TEST(Windowed, ClipsBeyondSpanAndMergesTracks) {
  TraceGuard guard;
  auto& sink = trace::sink();
  const u32 a = sink.track("a");
  const u32 b = sink.track("b");
  sink.complete(a, trace::Ev::kMemXact, 0, 150);
  sink.complete(b, trace::Ev::kMemXact, 50, 250);
  sink.instant(a, trace::Ev::kMiss, 999);  // beyond span: ignored
  const trace::Windowed agg = trace::aggregate(sink, 100, 200);
  EXPECT_EQ(agg.num_windows, 2u);
  const std::vector<Cycles> merged =
      agg.busy_across({a, b}, trace::Ev::kMemXact);
  EXPECT_EQ(merged[0], 150u);  // 100 (a) + 50 (b)
  EXPECT_EQ(merged[1], 150u);  // 50 (a) + 100 (b, clipped at 200)
  EXPECT_EQ(agg.total_count(a, trace::Ev::kMiss), 0u);
}

// ---------------------------------------------------------------------
// A small offload workload (the flagship heterogeneous path)
// ---------------------------------------------------------------------

struct WorkloadResult {
  Cycles host_cycles = 0;
  u64 host_instret = 0;
  Cycles cold_total = 0;
  Cycles warm_total = 0;
  u64 cluster_instret = 0;
  Cycles end_time = 0;
  u64 llc_hits = 0, llc_misses = 0;
  u64 tcdm_conflicts = 0;
  u64 hyper_bytes = 0;
  Cycles hyper_busy = 0;
};

/// Host int32 matmul + two int8 PMCA offloads on the shipped SoC
/// (HyperRAM + LLC), same shape as examples/offload_matmul.
WorkloadResult run_offload_workload() {
  const u32 m = 32, n = 32, k = 32;
  core::HulkVSoc soc;
  runtime::OffloadRuntime rt(&soc);
  Xoshiro256 rng(99);

  std::vector<i8> a(m * k), bt(n * k);
  for (auto& v : a) v = static_cast<i8>(rng.next_range(-128, 127));
  for (auto& v : bt) v = static_cast<i8>(rng.next_range(-128, 127));
  const Addr pa = rt.hulk_malloc(a.size());
  const Addr pbt = rt.hulk_malloc(bt.size());
  const Addr pc = rt.hulk_malloc(u64{m} * n * 4);
  soc.write_mem(pa, a.data(), a.size());
  soc.write_mem(pbt, bt.data(), bt.size());

  std::vector<i32> a32(m * k), b32(k * n);
  for (u32 i = 0; i < m * k; ++i) a32[i] = a[i];
  for (u32 row = 0; row < k; ++row) {
    for (u32 col = 0; col < n; ++col) b32[row * n + col] = bt[col * k + row];
  }
  const Addr qa = rt.hulk_malloc(a32.size() * 4);
  const Addr qb = rt.hulk_malloc(b32.size() * 4);
  const Addr qc = rt.hulk_malloc(u64{m} * n * 4);
  soc.write_mem(qa, a32.data(), a32.size() * 4);
  soc.write_mem(qb, b32.data(), b32.size() * 4);

  WorkloadResult out;
  const auto host_run = kernels::run_host_program(
      soc, kernels::host_matmul_i32(m, n, k).words,
      std::array<u64, 3>{qa, qb, qc});
  out.host_cycles = host_run.cycles;
  out.host_instret = host_run.instret;

  const u32 tcdm = static_cast<u32>(mem::map::kTcdmBase);
  const u32 a_l1 = tcdm + 0x100;
  const auto handle = rt.register_kernel(
      "mm", kernels::cluster_matmul_i8(m, n, k).words);
  const std::array<u32, 6> args = {
      static_cast<u32>(pa), static_cast<u32>(pbt), static_cast<u32>(pc),
      a_l1, a_l1 + m * k, a_l1 + m * k + n * k};
  const auto cold = rt.offload(handle, args);
  const auto warm = rt.offload(handle, args);
  out.cold_total = cold.total;
  out.warm_total = warm.total;
  out.cluster_instret = cold.cluster_instret + warm.cluster_instret;
  out.end_time = soc.host().now();

  out.llc_hits = soc.llc()->stats().get("hits");
  out.llc_misses = soc.llc()->stats().get("misses");
  out.tcdm_conflicts = soc.cluster().tcdm().stats().get("conflicts");
  out.hyper_bytes = soc.hyperram()->stats().get("bytes_read") +
                    soc.hyperram()->stats().get("bytes_written");
  out.hyper_busy = soc.hyperram()->stats().get("busy_cycles");
  return out;
}

// ---------------------------------------------------------------------
// Cycle parity: tracing must not perturb the simulation
// ---------------------------------------------------------------------

TEST(TraceParity, EnabledAndDisabledRunsAreBitIdentical) {
  trace::sink().disable();
  trace::sink().clear();
  const WorkloadResult off = run_offload_workload();
  EXPECT_EQ(trace::sink().events().size(), 0u);

  TraceGuard guard;
  const WorkloadResult on = run_offload_workload();
  EXPECT_GT(trace::sink().events().size(), 0u);

  EXPECT_EQ(off.host_cycles, on.host_cycles);
  EXPECT_EQ(off.host_instret, on.host_instret);
  EXPECT_EQ(off.cold_total, on.cold_total);
  EXPECT_EQ(off.warm_total, on.warm_total);
  EXPECT_EQ(off.end_time, on.end_time);
  EXPECT_EQ(off.llc_hits, on.llc_hits);
  EXPECT_EQ(off.hyper_bytes, on.hyper_bytes);
}

/// Drives both ISS block-dispatch loops hard: a branchy host loop and a
/// hardware-loop cluster kernel on all 8 cores. Returns every
/// timing-visible number the dispatch loops produce.
struct DispatchResult {
  Cycles host_cycles = 0;
  u64 host_instret = 0;
  Cycles kernel_cycles = 0;
  u64 kernel_instret = 0;
  std::vector<Cycles> core_now;
};

DispatchResult run_block_dispatch_workload() {
  using namespace isa::reg;
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  core::HulkVSoc soc(cfg);

  isa::Assembler h(core::layout::kHostCodeBase, /*rv64=*/true);
  h.li(t0, 500);
  h.li(t1, 0);
  h.label("loop");
  h.addi(t1, t1, 1);
  h.addi(t0, t0, -1);
  h.bnez(t0, "loop");
  h.li(a7, 93);
  h.li(a0, 0);
  h.ecall();
  const auto host_run =
      kernels::run_host_program(soc, h.assemble(), {});

  isa::Assembler k(0, /*rv64=*/false);
  k.li(t0, 0);
  k.li(t1, 3);
  k.lp_counti(0, 100);
  k.lp_starti(0, "body");
  k.lp_endi(0, "end");
  k.label("body");
  k.rr(isa::Op::kPMac, t0, t1, t1);
  k.addi(t2, t2, 1);
  k.label("end");
  k.addi(t3, t3, 1);
  k.li(a7, cluster::envcall::kExit);
  k.ecall();
  soc.load_program(mem::map::kL2Base, k.assemble());
  const auto kr =
      soc.cluster().run_kernel(soc.host().now(), mem::map::kL2Base, 0);

  DispatchResult out;
  out.host_cycles = host_run.cycles;
  out.host_instret = host_run.instret;
  out.kernel_cycles = kr.cycles;
  out.kernel_instret = kr.instret;
  for (u32 c = 0; c < soc.cluster().num_cores(); ++c) {
    out.core_now.push_back(soc.cluster().core(c).now());
  }
  return out;
}

TEST(TraceParity, BlockDispatchLoopsAreCycleIdenticalWithTracing) {
  trace::sink().disable();
  trace::sink().clear();
  const DispatchResult off = run_block_dispatch_workload();

  TraceGuard guard;
  const DispatchResult on = run_block_dispatch_workload();
  EXPECT_GT(trace::sink().events().size(), 0u);

  EXPECT_EQ(off.host_cycles, on.host_cycles);
  EXPECT_EQ(off.host_instret, on.host_instret);
  EXPECT_EQ(off.kernel_cycles, on.kernel_cycles);
  EXPECT_EQ(off.kernel_instret, on.kernel_instret);
  ASSERT_EQ(off.core_now.size(), on.core_now.size());
  for (size_t c = 0; c < off.core_now.size(); ++c) {
    EXPECT_EQ(off.core_now[c], on.core_now[c]) << "core " << c;
  }
}

// ---------------------------------------------------------------------
// Acceptance: track coverage and event volume on the flagship workload
// ---------------------------------------------------------------------

TEST(TraceCoverage, OffloadRunCoversSocTracksWithEnoughEvents) {
  TraceGuard guard;
  run_offload_workload();
  auto& sink = trace::sink();
  EXPECT_GE(sink.track_names().size(), 6u);
  EXPECT_GE(sink.events().size(), 1000u);
  for (const char* name : {"cva6", "pmca_core0", "pmca_core7", "llc",
                           "hyperram", "cluster_dma", "offload",
                           "event_unit", "tcdm", "host_l1d"}) {
    EXPECT_NE(sink.find_track(name), trace::kNoTrack) << name;
  }
  EXPECT_EQ(sink.dropped(), 0u);
}

// ---------------------------------------------------------------------
// Windowed totals == StatGroup totals (unbatched event classes, plus
// the batched commit stream which is flushed at run boundaries)
// ---------------------------------------------------------------------

TEST(TraceTotals, WindowedSumsMatchStatCounters) {
  TraceGuard guard;
  const WorkloadResult run = run_offload_workload();
  auto& sink = trace::sink();
  const trace::Windowed agg = trace::aggregate(sink, 1024);

  const u32 llc = sink.find_track("llc");
  ASSERT_NE(llc, trace::kNoTrack);
  EXPECT_EQ(agg.total_count(llc, trace::Ev::kHit), run.llc_hits);
  EXPECT_EQ(agg.total_count(llc, trace::Ev::kMiss), run.llc_misses);

  const u32 tcdm = sink.find_track("tcdm");
  ASSERT_NE(tcdm, trace::kNoTrack);
  EXPECT_EQ(agg.total_count(tcdm, trace::Ev::kConflict),
            run.tcdm_conflicts);

  const u32 hyper = sink.find_track("hyperram");
  ASSERT_NE(hyper, trace::kNoTrack);
  EXPECT_EQ(agg.total_value(hyper, trace::Ev::kMemXact), run.hyper_bytes);
  EXPECT_EQ(agg.total_busy(hyper, trace::Ev::kMemXact), run.hyper_busy);

  // Commit batches flush at run/kernel boundaries, so the windowed sum
  // equals retired instructions exactly.
  const u32 cva6 = sink.find_track("cva6");
  ASSERT_NE(cva6, trace::kNoTrack);
  EXPECT_EQ(agg.total_value(cva6, trace::Ev::kCommitBatch),
            run.host_instret);
  EXPECT_EQ(agg.total_value(cva6, trace::Ev::kRun), run.host_instret);

  u64 pmca_commits = 0;
  for (int c = 0; c < 8; ++c) {
    const u32 track = sink.find_track("pmca_core" + std::to_string(c));
    ASSERT_NE(track, trace::kNoTrack);
    pmca_commits += agg.total_value(track, trace::Ev::kCommitBatch);
  }
  EXPECT_EQ(pmca_commits, run.cluster_instret);
}

// ---------------------------------------------------------------------
// Chrome/Perfetto export: parse the JSON back
// ---------------------------------------------------------------------

/// Minimal JSON syntax validator (objects, arrays, strings, numbers,
/// literals) — enough to prove the exporter emits well-formed JSON.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return p_ == end_;
  }

 private:
  void skip_ws() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool consume(char c) {
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (end_ - p_ < static_cast<long>(word.size())) return false;
    if (std::string_view(p_, word.size()) != word) return false;
    p_ += word.size();
    return true;
  }
  bool string() {
    if (!consume('"')) return false;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
      }
      ++p_;
    }
    return consume('"');
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    bool digits = false;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '-' || *p_ == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p_));
      ++p_;
    }
    return digits && p_ != start;
  }
  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }
  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }
  bool value() {
    skip_ws();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const char* p_;
  const char* end_;
};

size_t count_occurrences(const std::string& haystack,
                         const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTrace, ExportIsWellFormedJsonWithNamedTracks) {
  TraceGuard guard;
  run_offload_workload();
  std::ostringstream os;
  trace::write_chrome_trace(os, trace::sink());
  const std::string json = os.str();

  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata record per track, >= the 6 acceptance
  // tracks; and plenty of payload events.
  EXPECT_GE(count_occurrences(json, "\"thread_name\""), 6u);
  for (const char* name : {"\"cva6\"", "\"pmca_core0\"", "\"llc\"",
                           "\"hyperram\"", "\"cluster_dma\"",
                           "\"offload\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
  EXPECT_GE(count_occurrences(json, "\"ph\":"), 1000u);
}

TEST(ChromeTrace, EmptySinkStillProducesValidJson) {
  TraceGuard guard;
  std::ostringstream os;
  trace::write_chrome_trace(os, trace::sink());
  EXPECT_TRUE(JsonValidator(os.str()).valid());
}

// ---------------------------------------------------------------------
// Power over time: the curve integrates to the whole-run energy
// ---------------------------------------------------------------------

TEST(PowerTrace, EnergyIntegralMatchesWholeRunToTenthPercent) {
  TraceGuard guard;
  const WorkloadResult run = run_offload_workload();

  power::RunActivity activity;
  activity.duration = run.end_time;
  activity.host_activity = 0.37;
  activity.cluster_activity = 0.91;
  activity.soc_activity = 0.5;
  activity.mem_busy_cycles = run.hyper_busy;
  activity.memory = core::MainMemoryKind::kHyperRam;

  const power::PowerModel model;
  const core::FrequencyPlan freq;
  const power::EnergyReport whole =
      power::compute_energy(activity, model, freq);
  ASSERT_GT(whole.total_mj, 0.0);

  for (const Cycles window :
       {Cycles{777}, Cycles{4096}, Cycles{65536}, run.end_time}) {
    const auto samples = power::power_over_time(trace::sink(), activity,
                                                model, freq, window);
    Cycles covered = 0;
    double integral_mj = 0;
    Cycles expect_start = 0;
    for (const auto& s : samples) {
      EXPECT_EQ(s.start, expect_start);
      expect_start += s.duration;
      covered += s.duration;
      integral_mj += s.energy_mj;
      EXPECT_GE(s.total_mw, 0.0);
    }
    EXPECT_EQ(covered, activity.duration) << "window " << window;
    EXPECT_NEAR(integral_mj, whole.total_mj, whole.total_mj * 1e-3)
        << "window " << window;
  }
}

TEST(PowerTrace, UniformFallbackWithoutTraceActivity) {
  // No trace events at all: every window falls back to the whole-run
  // activity factors and the integral still matches.
  TraceGuard guard;
  power::RunActivity activity;
  activity.duration = 10000;
  activity.host_activity = 0.8;
  activity.cluster_activity = 0.2;
  activity.mem_busy_cycles = 2500;

  const power::PowerModel model;
  const core::FrequencyPlan freq;
  const power::EnergyReport whole =
      power::compute_energy(activity, model, freq);
  const auto samples =
      power::power_over_time(trace::sink(), activity, model, freq, 3000);
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples.back().duration, 1000u);  // partial tail window
  double integral_mj = 0;
  for (const auto& s : samples) integral_mj += s.energy_mj;
  EXPECT_NEAR(integral_mj, whole.total_mj, whole.total_mj * 1e-9);
  // Uniform activity: constant power across windows.
  EXPECT_NEAR(samples[0].total_mw, samples[1].total_mw, 1e-9);
}

}  // namespace
}  // namespace hulkv
