#include "kernels/corpus.hpp"

#include <iomanip>
#include <sstream>

#include "core/soc.hpp"
#include "kernels/cluster_kernels.hpp"
#include "kernels/host_kernels.hpp"
#include "kernels/iot_benchmarks.hpp"

namespace hulkv::kernels {

namespace {

/// Cores assumed for the cluster sp window (the default PMCA team).
constexpr u32 kCorpusCores = 8;

void add(std::vector<CorpusEntry>& corpus, analysis::IsaProfile profile,
         const KernelProgram& program) {
  // Program names alone collide across paths/precisions ("matmul" is
  // four programs): qualify with the path and the precision.
  const bool cluster = profile == analysis::IsaProfile::kClusterRv32;
  corpus.push_back({std::string(cluster ? "cluster/" : "host/") +
                        program.name + "." +
                        std::string(precision_name(program.precision)),
                    profile, program.words});
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<CorpusEntry> analysis_corpus() {
  using analysis::IsaProfile;
  std::vector<CorpusEntry> corpus;
  // Cluster kernels (offload path, XpulpV2).
  add(corpus, IsaProfile::kClusterRv32, cluster_matmul_i8(8, 8, 8));
  add(corpus, IsaProfile::kClusterRv32, cluster_matmul_i32(8, 8, 8));
  add(corpus, IsaProfile::kClusterRv32, cluster_matmul_f16(8, 8, 8));
  add(corpus, IsaProfile::kClusterRv32, cluster_conv3x3_i8(8, 8));
  add(corpus, IsaProfile::kClusterRv32, cluster_fir_i8(64, 8));
  add(corpus, IsaProfile::kClusterRv32, cluster_axpy_f32(64));
  add(corpus, IsaProfile::kClusterRv32, cluster_axpy_f16(64));
  add(corpus, IsaProfile::kClusterRv32, cluster_relu_i8(64));
  add(corpus, IsaProfile::kClusterRv32, cluster_dotp_f16(64));
  // Host compute kernels (run_host_program path, RV64).
  add(corpus, IsaProfile::kHostRv64, host_matmul_i32(8, 8, 8));
  add(corpus, IsaProfile::kHostRv64, host_conv3x3_i32(8, 8));
  add(corpus, IsaProfile::kHostRv64, host_fir_i32(64, 8));
  add(corpus, IsaProfile::kHostRv64, host_matmul_f32(8, 8, 8));
  add(corpus, IsaProfile::kHostRv64, host_axpy_f32(64));
  add(corpus, IsaProfile::kHostRv64, host_dotp_f32(64));
  // IoT benchmarks (sections VI-B/C).
  add(corpus, IsaProfile::kHostRv64, host_crc32(256));
  add(corpus, IsaProfile::kHostRv64, host_shell_sort(64));
  add(corpus, IsaProfile::kHostRv64, host_histogram(256));
  add(corpus, IsaProfile::kHostRv64, host_strsearch(256, 8));
  add(corpus, IsaProfile::kHostRv64, host_dhrystone_mix(4));
  add(corpus, IsaProfile::kHostRv64, host_stride_reads(64, 64, 2));
  add(corpus, IsaProfile::kHostRv64, host_mixed_reads(6, 64 * 1024, 64, 2));
  add(corpus, IsaProfile::kHostRv64, host_pointer_chase(64));
  return corpus;
}

analysis::Analysis analyze_corpus_entry(const CorpusEntry& entry) {
  analysis::Options options;
  options.profile = entry.profile;
  if (entry.profile == analysis::IsaProfile::kClusterRv32) {
    options.base = 0;
    options.pic = true;
    const u64 tcdm_top = mem::map::kTcdmBase + options.tcdm_bytes;
    options.entry_values.emplace_back(
        isa::reg::a0,
        analysis::Interval::constant(mem::map::kTcdmBase, 32));
    options.entry_values.emplace_back(
        isa::reg::sp, analysis::Interval::range(
                          tcdm_top - u64{kCorpusCores - 1} * 1024,
                          tcdm_top));
  } else {
    options.base = core::layout::kHostCodeBase;
    options.pic = false;
    options.entry_values.emplace_back(
        isa::reg::sp,
        analysis::Interval::constant(core::layout::kHostStackTop - 64, 64));
  }
  return analysis::analyze_program(entry.words, options);
}

std::vector<CorpusResult> run_corpus_analysis() {
  std::vector<CorpusResult> results;
  for (CorpusEntry& entry : analysis_corpus()) {
    CorpusResult r;
    r.analysis = analyze_corpus_entry(entry);
    r.entry = std::move(entry);
    results.push_back(std::move(r));
  }
  return results;
}

std::string render_corpus_text(const std::vector<CorpusResult>& results) {
  std::ostringstream os;
  os << std::left << std::setw(16) << "program" << std::right
     << std::setw(7) << "instrs" << std::setw(7) << "blocks"
     << std::setw(6) << "pure" << std::setw(8) << "memfree"
     << std::setw(6) << "tcdm" << std::setw(9) << "eligible"
     << std::setw(6) << "funcs" << std::setw(5) << "err"
     << std::setw(6) << "warn" << "\n";
  size_t diags = 0;
  for (const CorpusResult& r : results) {
    const analysis::FactsTable& f = *r.analysis.facts;
    const analysis::Report& rep = r.analysis.report;
    os << std::left << std::setw(16) << r.entry.name << std::right
       << std::setw(7) << rep.instructions << std::setw(7) << rep.blocks
       << std::setw(6) << f.pure_blocks() << std::setw(8)
       << f.memory_free_blocks() << std::setw(6) << f.tcdm_local_blocks()
       << std::setw(9) << f.eligible_blocks() << std::setw(6)
       << f.functions.size() << std::setw(5) << rep.errors()
       << std::setw(6) << rep.warnings() << "\n";
    diags += rep.diagnostics.size();
  }
  for (const CorpusResult& r : results) {
    for (const analysis::Diagnostic& d : r.analysis.report.diagnostics) {
      os << r.entry.name << ": " << d.to_string() << "\n";
    }
  }
  os << results.size() << " program(s), " << diags << " diagnostic(s)\n";
  return os.str();
}

std::string render_corpus_json(const std::vector<CorpusResult>& results) {
  std::ostringstream os;
  os << "{\n  \"corpus\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CorpusResult& r = results[i];
    const analysis::FactsTable& f = *r.analysis.facts;
    const analysis::Report& rep = r.analysis.report;
    os << "    {\n";
    os << "      \"name\": \"" << json_escape(r.entry.name) << "\",\n";
    os << "      \"profile\": \""
       << (r.entry.profile == analysis::IsaProfile::kClusterRv32
               ? "cluster"
               : "host")
       << "\",\n";
    os << "      \"instructions\": " << rep.instructions << ",\n";
    os << "      \"blocks\": " << rep.blocks << ",\n";
    os << "      \"hw_loops\": " << rep.hw_loops << ",\n";
    os << "      \"errors\": " << rep.errors() << ",\n";
    os << "      \"warnings\": " << rep.warnings() << ",\n";
    os << "      \"reachable_blocks\": " << f.reachable_blocks() << ",\n";
    os << "      \"pure_blocks\": " << f.pure_blocks() << ",\n";
    os << "      \"memory_free_blocks\": " << f.memory_free_blocks()
       << ",\n";
    os << "      \"tcdm_local_blocks\": " << f.tcdm_local_blocks()
       << ",\n";
    os << "      \"eligible_blocks\": " << f.eligible_blocks() << ",\n";
    os << "      \"core_local_ecalls\": " << f.core_local_ecalls()
       << ",\n";
    os << "      \"functions\": " << f.functions.size() << ",\n";
    os << "      \"diagnostics\": [";
    for (size_t d = 0; d < rep.diagnostics.size(); ++d) {
      os << (d == 0 ? "\n" : ",\n") << "        \""
         << json_escape(rep.diagnostics[d].to_string()) << "\"";
    }
    os << (rep.diagnostics.empty() ? "]\n" : "\n      ]\n");
    os << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace hulkv::kernels
