#include "analysis/facts.hpp"

#include <algorithm>
#include <utility>

namespace hulkv::analysis {

namespace {

u32 count_blocks(const FactsTable& table, bool (*pred)(const BlockFacts&)) {
  u32 n = 0;
  for (const BlockFacts& b : table.blocks) {
    if (b.reachable && pred(b)) ++n;
  }
  return n;
}

}  // namespace

u32 FactsTable::reachable_blocks() const {
  return count_blocks(*this, [](const BlockFacts&) { return true; });
}

u32 FactsTable::pure_blocks() const {
  return count_blocks(*this, [](const BlockFacts& b) { return b.pure; });
}

u32 FactsTable::memory_free_blocks() const {
  return count_blocks(
      *this, [](const BlockFacts& b) { return !b.may_access_memory; });
}

u32 FactsTable::tcdm_local_blocks() const {
  return count_blocks(*this, [](const BlockFacts& b) {
    return b.may_access_memory && b.tcdm_local;
  });
}

u32 FactsTable::eligible_blocks() const {
  return count_blocks(
      *this, [](const BlockFacts& b) { return b.run_ahead_eligible; });
}

u32 FactsTable::core_local_ecalls() const {
  u32 n = 0;
  for (const u8 f : instr_facts) {
    if ((f & kFactCoreLocalEcall) != 0) ++n;
  }
  return n;
}

bool FactsTable::query_range(Addr start, const isa::Instr* instrs,
                             size_t count, isa::RunAheadFacts* out) const {
  if (count == 0 || start < base || (start - base) % 4 != 0) return false;
  const size_t first = static_cast<size_t>((start - base) / 4);
  if (first + count > words.size()) return false;
  isa::RunAheadFacts facts;
  facts.eligible = true;
  for (size_t i = 0; i < count; ++i) {
    // The image may have been rewritten since analysis (the decode
    // caches only invalidate on explicit load notifications, and facts
    // share that contract) — a mismatch degrades to "unproven".
    if (instrs[i].raw != words[first + i]) return false;
    const u8 f = instr_facts[first + i];
    if ((f & kFactMemAccess) != 0 || (f & kFactOrdered) != 0) {
      facts.eligible = false;
    }
    if ((f & kFactCoreLocalEcall) != 0 && i < 64) {
      facts.clear_mask |= u64{1} << i;
    }
  }
  facts.min_cycles = static_cast<u32>(count);
  *out = facts;
  return true;
}

void FactsRegistry::register_image(Addr load_base,
                                   std::shared_ptr<const FactsTable> table) {
  const Addr lo = load_base;
  const Addr hi = load_base + table->bytes();
  std::erase_if(entries_, [&](const Entry& e) {
    const Addr elo = e.load_base;
    const Addr ehi = e.load_base + e.table->bytes();
    return lo < ehi && elo < hi;
  });
  entries_.push_back({load_base, std::move(table)});
}

const FactsTable* FactsRegistry::find(Addr pc, Addr* image_base) const {
  for (const Entry& e : entries_) {
    if (pc >= e.load_base && pc < e.load_base + e.table->bytes()) {
      *image_base = e.load_base;
      return e.table.get();
    }
  }
  return nullptr;
}

void attach_facts(isa::BlockCache& cache, Addr load_base,
                  std::shared_ptr<const FactsTable> table) {
  cache.set_fact_provider(
      [load_base, table = std::move(table)](
          Addr start, const isa::Instr* instrs, size_t count,
          isa::RunAheadFacts* out) {
        if (start < load_base) return false;
        return table->query_range(table->base + (start - load_base),
                                  instrs, count, out);
      });
}

void attach_registry(isa::BlockCache& cache,
                     std::shared_ptr<const FactsRegistry> registry) {
  cache.set_fact_provider(
      [registry = std::move(registry)](Addr start, const isa::Instr* instrs,
                                       size_t count,
                                       isa::RunAheadFacts* out) {
        Addr image_base = 0;
        const FactsTable* table = registry->find(start, &image_base);
        if (table == nullptr) return false;
        return table->query_range(table->base + (start - image_base),
                                  instrs, count, out);
      });
}

}  // namespace hulkv::analysis
