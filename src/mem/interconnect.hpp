// SoC memory map and AXI4 crossbar model (paper figure 1).
//
// The main host interconnect is a 64-bit AXI4 crossbar connecting the
// CVA6 core, the PMCA's master port, the uDMA and the memory targets
// (L2SPM, LLC + external memory, cluster TCDM, APB peripherals). This
// model routes by address, applies a per-hop crossbar latency, performs
// the functional data movement, and delegates per-target timing to the
// registered MemTiming models. An IOPMP hook filters transactions from
// cluster masters (section III-C: "An IOPMP controlled by CVA6 filters
// master transactions").
#pragma once

#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "mem/backing_store.hpp"
#include "mem/timing.hpp"

namespace hulkv::mem {

/// SoC physical memory map (PULP-style, DESIGN.md section 4).
namespace map {
inline constexpr Addr kBootRomBase = 0x0000'1000ull;
inline constexpr u64 kBootRomSize = 64 * 1024;
inline constexpr Addr kTcdmBase = 0x1000'0000ull;
inline constexpr u64 kTcdmSize = 128 * 1024;
inline constexpr Addr kClusterPeriphBase = 0x1020'0000ull;
inline constexpr u64 kClusterPeriphSize = 64 * 1024;
inline constexpr Addr kApbBase = 0x1A10'0000ull;
inline constexpr u64 kApbSize = 1024 * 1024;
inline constexpr Addr kL2Base = 0x1C00'0000ull;
inline constexpr u64 kL2Size = 512 * 1024;
inline constexpr Addr kDramBase = 0x8000'0000ull;
inline constexpr u64 kDramSize = 512ull * 1024 * 1024;
}  // namespace map

/// Memory-mapped peripheral registers (event unit, mailbox, DMA config).
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual u64 mmio_read(Addr offset, u32 size) = 0;
  virtual void mmio_write(Addr offset, u64 value, u32 size) = 0;
};

/// Identity of the requesting AXI master (for IOPMP filtering and for
/// per-path crossbar latencies).
enum class Master { kHost, kClusterCore, kClusterDma, kUdma };

class SocBus {
 public:
  SocBus();

  // ---- wiring (called once by the SoC constructor) ----

  /// Attach flat SRAM targets. `timing` models the target-side latency;
  /// the crossbar hop is added by the bus.
  void set_tcdm(std::vector<u8>* storage, MemTiming* timing);
  void set_l2(std::vector<u8>* storage, MemTiming* timing);
  void set_boot_rom(std::vector<u8>* storage, MemTiming* timing);

  /// Attach the external-memory path. `timing` is the LLC (or the bare
  /// device when the LLC is disabled, Figs. 7/8 configurations).
  void set_dram(BackingStore* store, MemTiming* timing);

  /// Attach an MMIO window (cluster peripherals / APB devices).
  void add_mmio(Addr base, u64 size, MmioDevice* device, MemTiming* timing);

  /// Install the IOPMP check applied to cluster-master transactions.
  /// Return false to deny (the bus raises a SimError, modelling an AXI
  /// error response).
  using IopmpCheck = std::function<bool(Addr addr, u32 bytes, bool is_write)>;
  void set_iopmp(IopmpCheck check) { iopmp_ = std::move(check); }

  // ---- timed accesses (functional data movement + timing) ----

  Cycles read(Cycles now, Addr addr, void* dst, u32 bytes, Master master);
  Cycles write(Cycles now, Addr addr, const void* src, u32 bytes,
               Master master);

  // ---- functional-only accesses (loaders, tests, debug) ----

  void read_functional(Addr addr, void* dst, u32 bytes);
  void write_functional(Addr addr, const void* src, u32 bytes);

  /// Direct handle to the DRAM contents (loaders, DMA engines).
  BackingStore* dram_store() { return dram_store_; }
  /// Timing model of the DRAM path as seen from the AXI side (the LLC).
  MemTiming* dram_timing() { return dram_timing_; }

  const StatGroup& stats() const { return stats_; }

  /// Snapshot traversal. The wiring (regions, handlers) is established
  /// at construction and never changes; the crossbar's only mutable
  /// state is its counters.
  void serialize(snapshot::Archive& ar) { stats_.serialize(ar); }

  /// Freshly-constructed state (counters only; wiring is untouched).
  void reset() { stats_.reset(); }

 private:
  struct SramRegion {
    Addr base = 0;
    u64 size = 0;
    std::vector<u8>* storage = nullptr;
    MemTiming* timing = nullptr;
  };
  struct MmioRegion {
    Addr base = 0;
    u64 size = 0;
    MmioDevice* device = nullptr;
    MemTiming* timing = nullptr;
  };

  Cycles transact(Cycles now, Addr addr, void* data, u32 bytes,
                  bool is_write, Master master, bool timed);
  Cycles xbar_latency(Master master) const;

  std::vector<SramRegion> srams_;
  std::vector<MmioRegion> mmios_;
  BackingStore* dram_store_ = nullptr;
  MemTiming* dram_timing_ = nullptr;
  IopmpCheck iopmp_;
  StatGroup stats_;
};

}  // namespace hulkv::mem
