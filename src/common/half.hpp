// IEEE-754 binary16 ("FP16") software emulation.
//
// The PMCA's shared FPUs support FP32 and FP16 with 2-way SIMD (paper
// section III-C); the host CVA6 only has scalar FP32/FP64. The instruction
// set simulator emulates the reduced-precision SIMD datapath with these
// helpers: every FP16 operation is computed in float and rounded back
// through `Half`, which matches the behaviour of a
// round-after-each-operation FP16 FMA datapath closely enough for the
// kernel-level accuracy checks in tests/ (golden models bound the ULP
// error).
#pragma once

#include "common/types.hpp"

namespace hulkv {

/// Value type for IEEE binary16. Stored as the raw 16-bit pattern;
/// conversions implement round-to-nearest-even, gradual underflow
/// (subnormals), and NaN/Inf propagation.
class Half {
 public:
  constexpr Half() = default;

  /// Reinterpret a raw binary16 bit pattern.
  static constexpr Half from_bits(u16 raw) {
    Half h;
    h.bits_ = raw;
    return h;
  }

  /// Convert from float with round-to-nearest-even.
  static Half from_float(float f);

  /// Widen to float (exact).
  float to_float() const;

  constexpr u16 bits() const { return bits_; }

  constexpr bool operator==(const Half&) const = default;

 private:
  u16 bits_ = 0;
};

/// Convert a float to binary16 bits (round-to-nearest-even).
u16 float_to_half_bits(float f);

/// Convert binary16 bits to float (exact widening).
float half_bits_to_float(u16 bits);

}  // namespace hulkv
