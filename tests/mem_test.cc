// Memory-system tests: backing store, caches + LRU, LLC geometry and
// filter, HyperRAM timing identities, DDR model, uDMA, SoC bus routing.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "mem/backing_store.hpp"
#include "mem/cache.hpp"
#include "mem/ddr.hpp"
#include "mem/hyperram.hpp"
#include "mem/interconnect.hpp"
#include "mem/llc.hpp"
#include "mem/udma.hpp"

namespace hulkv::mem {
namespace {

TEST(BackingStore, ReadsZeroWhenUntouched) {
  BackingStore store;
  EXPECT_EQ(store.load<u64>(0x8000'0000), 0u);
  EXPECT_EQ(store.resident_pages(), 0u);
}

TEST(BackingStore, RoundTripAcrossPages) {
  BackingStore store;
  std::vector<u8> data(10000);
  std::iota(data.begin(), data.end(), 0);
  const Addr base = 0x8000'0FF0;  // straddles page boundaries
  store.write(base, data.data(), data.size());
  std::vector<u8> back(data.size());
  store.read(base, back.data(), back.size());
  EXPECT_EQ(back, data);
  EXPECT_GE(store.resident_pages(), 3u);
}

TEST(BackingStore, TypedAccessors) {
  BackingStore store;
  store.store<u32>(0x100, 0xDEADBEEF);
  EXPECT_EQ(store.load<u32>(0x100), 0xDEADBEEFu);
  EXPECT_EQ(store.load<u16>(0x100), 0xBEEFu);
}

TEST(SetAssocTags, HitAfterFill) {
  SetAssocTags tags(4, 2, 64);
  EXPECT_FALSE(tags.lookup(0x1000));
  tags.fill(0x1000);
  EXPECT_TRUE(tags.lookup(0x1000));
  EXPECT_TRUE(tags.probe(0x1000));
  EXPECT_TRUE(tags.lookup(0x1038));  // same line
  EXPECT_FALSE(tags.probe(0x1040));  // next line
}

TEST(SetAssocTags, LruEviction) {
  SetAssocTags tags(1, 2, 64);  // one set, two ways
  tags.fill(0x0000);
  tags.fill(0x1000);
  EXPECT_TRUE(tags.probe(0x0000));
  // Touch 0x0000 so 0x1000 becomes LRU.
  EXPECT_TRUE(tags.lookup(0x0000));
  const auto victim = tags.fill(0x2000);
  EXPECT_TRUE(victim.valid);
  EXPECT_EQ(victim.line_addr, 0x1000u);
  EXPECT_TRUE(tags.probe(0x0000));
  EXPECT_FALSE(tags.probe(0x1000));
}

TEST(SetAssocTags, DirtyVictimReported) {
  SetAssocTags tags(1, 1, 64);
  tags.fill(0x0000);
  tags.mark_dirty(0x0000);
  const auto victim = tags.fill(0x1000);
  EXPECT_TRUE(victim.valid);
  EXPECT_TRUE(victim.dirty);
  EXPECT_EQ(victim.line_addr, 0x0000u);
}

TEST(SetAssocTags, VictimAddressReconstruction) {
  // Property: for random addresses, the evicted line address always maps
  // back to the same set as the filling address.
  Xoshiro256 rng(3);
  SetAssocTags tags(16, 2, 64);
  for (int i = 0; i < 2000; ++i) {
    const Addr addr = rng.next_below(1u << 24) * 64;
    const auto victim = tags.fill(addr);
    if (victim.valid) {
      EXPECT_EQ((victim.line_addr / 64) % 16, (addr / 64) % 16);
    }
  }
}

TEST(CacheModel, HitsAreFast) {
  FixedLatency slow(100);
  CacheConfig cfg{.name = "c",
                  .size_bytes = 1024,
                  .line_bytes = 64,
                  .ways = 2,
                  .write_through = false,
                  .write_allocate = true,
                  .hit_latency = 1,
                  .fill_penalty = 1};
  CacheModel cache(cfg, &slow);
  const Cycles miss = cache.access(0, 0x1000, 4, false);
  EXPECT_GE(miss, 100u);  // refill went downstream
  const Cycles hit = cache.access(miss, 0x1000, 4, false) - miss;
  EXPECT_EQ(hit, 1u);
  EXPECT_EQ(cache.stats().get("misses"), 1u);
  EXPECT_EQ(cache.stats().get("hits"), 1u);
}

TEST(CacheModel, WriteThroughForwardsEveryWrite) {
  FixedLatency next(10);
  CacheConfig cfg{.name = "wt",
                  .size_bytes = 1024,
                  .line_bytes = 64,
                  .ways = 2,
                  .write_through = true,
                  .write_allocate = false,
                  .hit_latency = 1,
                  .fill_penalty = 1};
  CacheModel cache(cfg, &next);
  cache.access(0, 0x0, 64, false);  // fill the line
  cache.access(100, 0x0, 8, true);  // write hit
  cache.access(200, 0x4000, 8, true);  // write miss (no allocate)
  EXPECT_EQ(cache.stats().get("writethrough_words"), 2u);
  EXPECT_FALSE(cache.config().write_allocate);
  // No-allocate: the missed write must not have installed the line.
  const Cycles before = cache.stats().get("misses");
  cache.access(300, 0x4000, 8, false);
  EXPECT_EQ(cache.stats().get("misses"), before + 1);
}

TEST(CacheModel, WritebackEvictsDirtyLines) {
  FixedLatency next(10);
  CacheConfig cfg{.name = "wb",
                  .size_bytes = 64,  // one line only
                  .line_bytes = 64,
                  .ways = 1,
                  .write_through = false,
                  .write_allocate = true,
                  .hit_latency = 1,
                  .fill_penalty = 0};
  CacheModel cache(cfg, &next);
  cache.access(0, 0x0, 8, true);     // miss + allocate + dirty
  cache.access(100, 0x1000, 8, false);  // evicts dirty line
  EXPECT_EQ(cache.stats().get("writebacks"), 1u);
}

TEST(CacheModel, LineStraddleSplits) {
  FixedLatency next(10);
  CacheConfig cfg{.name = "sp", .size_bytes = 1024, .line_bytes = 64,
                  .ways = 2};
  CacheModel cache(cfg, &next);
  cache.access(0, 60, 8, false);  // crosses the 64-byte boundary
  EXPECT_EQ(cache.stats().get("reads"), 2u);
}

TEST(Llc, PaperGeometryIs128kB) {
  LlcConfig cfg;
  EXPECT_EQ(cfg.line_bytes(), 64u);
  EXPECT_EQ(cfg.size_bytes(), 128u * 1024);
}

TEST(Llc, FilterBypassesNonCacheable) {
  Ddr4Model ddr({.latency = 50, .bytes_per_cycle = 8});
  Llc llc(LlcConfig{}, &ddr);
  // Below the cacheable base: propagated directly.
  llc.access(0, 0x1000, 8, false);
  EXPECT_EQ(llc.stats().get("bypass"), 1u);
  EXPECT_EQ(llc.stats().get("reads"), 0u);
}

TEST(Llc, MissThenHit) {
  Ddr4Model ddr({.latency = 50, .bytes_per_cycle = 8});
  Llc llc(LlcConfig{}, &ddr);
  const Addr addr = 0x8000'0000;
  const Cycles miss_done = llc.access(0, addr, 8, false);
  EXPECT_GT(miss_done, 50u);
  EXPECT_TRUE(llc.probe(addr));
  const Cycles t1 = llc.access(miss_done, addr, 8, false);
  EXPECT_EQ(t1 - miss_done,
            llc.config().tag_latency + llc.config().hit_latency);
  EXPECT_EQ(llc.hit_ratio(), 0.5);
}

TEST(Llc, DirtyEvictionWritesBack) {
  Ddr4Model ddr({.latency = 10, .bytes_per_cycle = 8});
  LlcConfig cfg;
  cfg.num_ways = 1;
  cfg.num_lines = 1;  // single line: every new line evicts
  Llc llc(cfg, &ddr);
  llc.access(0, 0x8000'0000, 8, true);   // dirty
  llc.access(100, 0x8000'1000, 8, false);  // evict + refill
  EXPECT_EQ(llc.stats().get("evictions"), 1u);
  EXPECT_EQ(ddr.stats().get("writes"), 1u);
  EXPECT_EQ(ddr.stats().get("bytes_written"), 64u);
}

TEST(Llc, WorkingSetLargerThanCacheMisses) {
  Ddr4Model ddr({.latency = 10, .bytes_per_cycle = 8});
  Llc llc(LlcConfig{}, &ddr);
  // Stream 1 MB twice: > 128 kB LLC, second pass should still miss.
  Cycles t = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (Addr a = 0; a < (1u << 20); a += 64) {
      t = llc.access(t, 0x8000'0000 + a, 64, false);
    }
  }
  EXPECT_LT(llc.hit_ratio(), 0.01);
}

TEST(HyperRam, SingleBurstTiming) {
  HyperRamConfig cfg;
  cfg.refresh_period = 1u << 30;  // no refresh in this test
  HyperRamModel hyper(cfg);
  // 64-byte read: (3 CA + 6 latency + 32 data clocks) * clk_div 2.
  const Cycles done = hyper.access(0, 0x8000'0000, 64, false);
  EXPECT_EQ(done, (3 + 6 + 32) * 2u);
}

TEST(HyperRam, DualBusDoublesBandwidth) {
  HyperRamConfig one;
  one.refresh_period = 1u << 30;
  HyperRamConfig two = one;
  two.num_buses = 2;
  HyperRamModel bus1(one), bus2(two);
  const u32 bytes = 512;  // one max burst
  const Cycles t1 = bus1.access(0, 0x8000'0000, bytes, false);
  const Cycles t2 = bus2.access(0, 0x8000'0000, bytes, false);
  // Data phase halves; CA + latency overheads stay.
  const Cycles data1 = bytes / 2 * 2;  // clocks*div
  const Cycles data2 = bytes / 4 * 2;
  EXPECT_EQ(t1 - data1, t2 - data2);
  EXPECT_EQ(t1 - t2, data1 - data2);
  EXPECT_DOUBLE_EQ(two.peak_bytes_per_cycle(), 2.0);
}

TEST(HyperRam, LongTransfersSplitIntoBursts) {
  HyperRamConfig cfg;
  cfg.refresh_period = 1u << 30;
  cfg.max_burst_bytes = 512;
  HyperRamModel hyper(cfg);
  hyper.access(0, 0x8000'0000, 2048, false);
  EXPECT_EQ(hyper.stats().get("bursts"), 4u);
}

TEST(HyperRam, ChipSelectBoundarySplits) {
  HyperRamConfig cfg;
  cfg.refresh_period = 1u << 30;
  cfg.chip_bytes = 1024;  // tiny chips to force a CS crossing
  cfg.chips_per_bus = 8;
  cfg.max_burst_bytes = 4096;
  HyperRamModel hyper(cfg);
  hyper.access(0, 0x8000'0000 + 512, 1024, false);  // crosses chip 0->1
  EXPECT_EQ(hyper.stats().get("bursts"), 2u);
}

TEST(HyperRam, RefreshCollisionAddsLatency) {
  HyperRamConfig cfg;
  cfg.refresh_period = 100;
  HyperRamModel hyper(cfg);
  Cycles t = 0;
  for (int i = 0; i < 20; ++i) {
    t = hyper.access(t, 0x8000'0000, 64, false);
  }
  EXPECT_GT(hyper.stats().get("refresh_collisions"), 0u);
}

TEST(HyperRam, DeviceSerialisesConcurrentMasters) {
  HyperRamConfig cfg;
  cfg.refresh_period = 1u << 30;
  HyperRamModel hyper(cfg);
  const Cycles a = hyper.access(0, 0x8000'0000, 64, false);
  // Second request issued "in the past" still starts after the first.
  const Cycles b = hyper.access(0, 0x8000'2000, 64, false);
  EXPECT_GE(b, a);
}

TEST(HyperRam, CapacityAndConfigValidation) {
  HyperRamConfig cfg;
  EXPECT_EQ(cfg.total_bytes(), 512ull * 1024 * 1024);
  cfg.num_buses = 3;
  EXPECT_THROW(HyperRamModel bad(cfg), SimError);
}

TEST(Ddr4, LatencyAndBandwidth) {
  Ddr4Model ddr({.latency = 21, .bytes_per_cycle = 8});
  EXPECT_EQ(ddr.access(0, 0x8000'0000, 64, false), 21u + 8u);
  // Back-to-back transfers pipeline: only the data beats serialise.
  const Cycles second = ddr.access(0, 0x8000'0040, 64, false);
  EXPECT_EQ(second, 8u + 21u + 8u);
}

TEST(Ddr4, IsFasterThanHyperRamForLines) {
  HyperRamConfig hcfg;
  hcfg.refresh_period = 1u << 30;
  HyperRamModel hyper(hcfg);
  Ddr4Model ddr({});
  const Cycles th = hyper.access(0, 0x8000'0000, 64, false);
  const Cycles td = ddr.access(0, 0x8000'0000, 64, false);
  EXPECT_GT(th, 2 * td);  // the gap Figs. 7/8 rest on
}

class SocBusFixture : public ::testing::Test {
 protected:
  SocBusFixture() : l2_(1024 * 512), rom_(65536), ddr_({}) {
    bus_.set_l2(&l2_, &l2_timing_);
    bus_.set_boot_rom(&rom_, &rom_timing_);
    bus_.set_dram(&dram_, &ddr_);
  }

  std::vector<u8> l2_, rom_;
  BackingStore dram_;
  Ddr4Model ddr_;
  SramTiming l2_timing_{1, 8};
  SramTiming rom_timing_{1, 8};
  SocBus bus_;
};

TEST_F(SocBusFixture, RoutesByAddress) {
  const u64 value = 0x1122334455667788ull;
  bus_.write_functional(map::kL2Base + 8, &value, 8);
  EXPECT_EQ(*reinterpret_cast<u64*>(l2_.data() + 8), value);
  u64 got = 0;
  bus_.read_functional(map::kL2Base + 8, &got, 8);
  EXPECT_EQ(got, value);

  bus_.write_functional(map::kDramBase + 64, &value, 8);
  EXPECT_EQ(dram_.load<u64>(map::kDramBase + 64), value);
}

TEST_F(SocBusFixture, UnmappedAddressThrows) {
  u64 v = 0;
  EXPECT_THROW(bus_.read_functional(0x5000'0000, &v, 8), SimError);
}

TEST_F(SocBusFixture, TimedAccessAddsXbarHop) {
  u64 v = 0;
  const Cycles done = bus_.read(100, map::kL2Base, &v, 8, Master::kHost);
  EXPECT_GT(done, 100u);
}

TEST_F(SocBusFixture, IopmpDeniesClusterOnly) {
  bus_.set_iopmp([](Addr, u32, bool) { return false; });
  u64 v = 0;
  EXPECT_NO_THROW(bus_.read(0, map::kL2Base, &v, 8, Master::kHost));
  EXPECT_THROW(bus_.read(0, map::kL2Base, &v, 8, Master::kClusterCore),
               SimError);
  EXPECT_THROW(bus_.write(0, map::kL2Base, &v, 8, Master::kClusterDma),
               SimError);
}

class MmioEcho : public MmioDevice {
 public:
  u64 mmio_read(Addr offset, u32) override { return offset * 2; }
  void mmio_write(Addr offset, u64 value, u32) override {
    last_offset = offset;
    last_value = value;
  }
  Addr last_offset = 0;
  u64 last_value = 0;
};

TEST_F(SocBusFixture, MmioDispatch) {
  MmioEcho device;
  FixedLatency timing(4);
  bus_.add_mmio(0x1A10'0000, 0x1000, &device, &timing);
  u32 value = 0;
  bus_.read_functional(0x1A10'0010, &value, 4);
  EXPECT_EQ(value, 0x20u);
  const u32 w = 0xABCD;
  bus_.write_functional(0x1A10'0020, &w, 4);
  EXPECT_EQ(device.last_offset, 0x20u);
  EXPECT_EQ(device.last_value, 0xABCDu);
}

TEST(Udma, Transfers1dBothDirections) {
  BackingStore dram;
  std::vector<u8> l2(512 * 1024);
  HyperRamConfig cfg;
  cfg.refresh_period = 1u << 30;
  HyperRamModel hyper(cfg);
  Udma udma(&dram, &hyper, &l2, map::kL2Base, map::kDramBase);

  std::vector<u8> payload(1000);
  std::iota(payload.begin(), payload.end(), 1);
  dram.write(map::kDramBase + 0x100, payload.data(), payload.size());

  // DRAM -> L2.
  const Cycles t1 =
      udma.transfer_1d(0, map::kL2Base + 64, map::kDramBase + 0x100, 1000);
  EXPECT_GT(t1, 0u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), l2.begin() + 64));

  // L2 -> DRAM.
  l2[64] = 0x5A;
  udma.transfer_1d(t1, map::kDramBase + 0x8000, map::kL2Base + 64, 1000);
  EXPECT_EQ(dram.load<u8>(map::kDramBase + 0x8000), 0x5A);
}

TEST(Udma, RejectsDramToDram) {
  BackingStore dram;
  std::vector<u8> l2(1024);
  Ddr4Model ddr({});
  Udma udma(&dram, &ddr, &l2, map::kL2Base, map::kDramBase);
  EXPECT_THROW(
      udma.transfer_1d(0, map::kDramBase, map::kDramBase + 0x1000, 64),
      SimError);
}

TEST(Udma, TwoDimensionalGather) {
  BackingStore dram;
  std::vector<u8> l2(4096);
  Ddr4Model ddr({});
  Udma udma(&dram, &ddr, &l2, map::kL2Base, map::kDramBase);
  // 4 rows of 16 bytes with stride 64 in DRAM -> packed in L2.
  for (u32 r = 0; r < 4; ++r) {
    std::vector<u8> row(16, static_cast<u8>(r + 1));
    dram.write(map::kDramBase + r * 64, row.data(), row.size());
  }
  udma.transfer_2d(0, map::kL2Base, map::kDramBase, 16, 4, 64);
  for (u32 r = 0; r < 4; ++r) {
    EXPECT_EQ(l2[r * 16], r + 1);
    EXPECT_EQ(l2[r * 16 + 15], r + 1);
  }
  EXPECT_EQ(udma.stats().get("jobs_2d"), 1u);
  EXPECT_EQ(udma.stats().get("bytes"), 64u);
}

TEST(SramTiming, PortSerialises) {
  SramTiming sram(1, 8);
  const Cycles a = sram.access(0, 0, 64, false);  // 8 beats
  EXPECT_EQ(a, 1u + 8u);
  const Cycles b = sram.access(0, 64, 8, false);  // queued behind
  EXPECT_EQ(b, 8u + 1u + 1u);
}

}  // namespace
}  // namespace hulkv::mem
