#include "batch/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <istream>
#include <mutex>
#include <sstream>
#include <streambuf>
#include <thread>

#include "common/log.hpp"
#include "profile/attr.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"

namespace hulkv::batch {

namespace {

/// Stats of the most recent run_jobs() (orchestration-thread owned).
SweepStats g_last_stats;  // NOLINT(cert-err58-cpp)

/// Read-only istream over a byte span (no copy — the snapshot blob is
/// shared by every concurrent restore).
class SpanBuf : public std::streambuf {
 public:
  SpanBuf(const u8* data, u64 size) {
    // std::streambuf wants char*; the get area is never written through.
    char* base = const_cast<char*>(reinterpret_cast<const char*>(data));
    setg(base, base, base + size);
  }
};

}  // namespace

u32 default_jobs() {
  const u32 hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

double SweepStats::jobs_per_s() const {
  return wall_ns == 0 ? 0.0
                      : static_cast<double>(jobs) / wall_seconds();
}

double SweepStats::utilization() const {
  if (wall_ns == 0 || workers == 0) return 0.0;
  return static_cast<double>(busy_ns) /
         (static_cast<double>(wall_ns) * workers);
}

void SweepStats::add_to(report::MetricsReport& rep,
                        const std::string& prefix) const {
  rep.add_metric(prefix + "jobs", report::Value::uinteger(jobs));
  rep.add_metric(prefix + "workers", report::Value::uinteger(workers));
  rep.add_metric(prefix + "wall_s",
                 report::Value::number(wall_seconds(), 4), "s");
  rep.add_metric(prefix + "jobs_per_s",
                 report::Value::number(jobs_per_s(), 2), "jobs/s");
  rep.add_metric(prefix + "latency_p50",
                 report::Value::uinteger(latency.percentile(50)), "ns");
  rep.add_metric(prefix + "latency_p90",
                 report::Value::uinteger(latency.percentile(90)), "ns");
  rep.add_metric(prefix + "latency_p99",
                 report::Value::uinteger(latency.percentile(99)), "ns");
  rep.add_metric(prefix + "latency_mean",
                 report::Value::number(latency.mean(), 1), "ns");
  rep.add_metric(prefix + "utilization",
                 report::Value::number(utilization(), 4));
  rep.add_metric(prefix + "max_in_flight",
                 report::Value::uinteger(max_in_flight));
}

const SweepStats& last_sweep_stats() { return g_last_stats; }

namespace {

/// Finalize per-job measurements into g_last_stats and, when telemetry
/// is collecting, hand the summary to the registry for the manifest.
void finish_sweep_stats(SweepStats stats, const std::vector<u64>& durations,
                        std::vector<u64> in_flight, u64 start_ns) {
  stats.wall_ns = telemetry::now_ns() - start_ns;
  for (const u64 d : durations) {
    stats.latency.record(d);
    stats.busy_ns += d;
  }
  for (const u64 f : in_flight) {
    stats.max_in_flight = std::max(stats.max_in_flight, f);
  }
  stats.in_flight_samples = std::move(in_flight);
  if (telemetry::enabled()) {
    telemetry::SweepSummary summary;
    summary.jobs = stats.jobs;
    summary.workers = stats.workers;
    summary.wall_ns = stats.wall_ns;
    summary.busy_ns = stats.busy_ns;
    summary.p50_ns = stats.latency.percentile(50);
    summary.p99_ns = stats.latency.percentile(99);
    summary.max_in_flight = stats.max_in_flight;
    summary.jobs_per_s = stats.jobs_per_s();
    summary.utilization = stats.utilization();
    telemetry::registry().note_sweep(summary);
  }
  g_last_stats = std::move(stats);
}

}  // namespace

void run_jobs(u64 count, u32 workers, const std::function<void(u64)>& job) {
  if (count == 0) {
    g_last_stats = {};
    return;
  }
  if (workers == 0) workers = default_jobs();
  if (workers > count) workers = static_cast<u32>(count);

  SweepStats stats;
  stats.jobs = count;
  stats.workers = workers;
  const u64 start_ns = telemetry::now_ns();
  // Slot-per-job measurement storage: workers write disjoint indices,
  // and the pool join orders those writes before the aggregation below.
  std::vector<u64> durations(count);
  std::vector<u64> in_flight(count);

  if (workers <= 1) {
    // Serial path: inline, index order — byte-identical to the
    // pre-batch single-threaded benches by construction.
    for (u64 i = 0; i < count; ++i) {
      in_flight[i] = 1;
      const u64 job_start = telemetry::now_ns();
      {
        const telemetry::Span span(telemetry::SpanPhase::kBatchJob);
        job(i);
      }
      durations[i] = telemetry::now_ns() - job_start;
    }
    finish_sweep_stats(std::move(stats), durations, std::move(in_flight),
                       start_ns);
    return;
  }

  HULKV_CHECK(!trace::enabled(),
              "batch: the trace sink is not thread-safe; "
              "run with --jobs 1 when tracing");
  HULKV_CHECK(!profile::enabled(),
              "batch: the cycle profiler is not thread-safe; "
              "run with --jobs 1 when profiling");
  // Force the lazy HULKV_LOG read now, while single-threaded; workers
  // then only read the settled level.
  (void)log_level();

  std::atomic<u64> next{0};
  std::atomic<u64> completed{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (u32 w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (u64 i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        // Jobs 0..i-1 were claimed before this one (fetch_add order),
        // so claimed-but-unfinished = i + 1 - completed, counting this
        // job. The sample is stored slot-per-job: values vary run to
        // run (true concurrency), placement never does.
        in_flight[i] = i + 1 - completed.load(std::memory_order_relaxed);
        const u64 job_start = telemetry::now_ns();
        {
          const telemetry::Span span(telemetry::SpanPhase::kBatchJob);
          try {
            job(i);
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
        durations[i] = telemetry::now_ns() - job_start;
        completed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  finish_sweep_stats(std::move(stats), durations, std::move(in_flight),
                     start_ns);
}

SocSnapshot SocSnapshot::capture(
    core::HulkVSoc& soc, const core::HulkVSoc::SectionWriterFn& extra) {
  std::ostringstream os(std::ios::binary);
  soc.save(os, extra);
  const std::string blob = os.str();
  SocSnapshot snap;
  snap.bytes_.assign(blob.begin(), blob.end());
  return snap;
}

SocSnapshot SocSnapshot::from_bytes(std::vector<u8> bytes) {
  SocSnapshot snap;
  snap.bytes_ = std::move(bytes);
  return snap;
}

void SocSnapshot::restore_into(
    core::HulkVSoc& soc, const core::HulkVSoc::SectionReaderFn& extra) const {
  HULKV_CHECK(!bytes_.empty(), "restore from an empty SocSnapshot");
  SpanBuf buf(bytes_.data(), bytes_.size());
  std::istream is(&buf);
  soc.restore(is, extra);
}

report::MetricsReport merge_reports(
    const std::string& name,
    const std::vector<report::MetricsReport>& parts) {
  report::MetricsReport merged(name);
  for (const report::MetricsReport& part : parts) {
    for (const auto& metric : part.metrics()) {
      merged.add_metric(metric.key, metric.value, metric.unit);
    }
    for (const report::Table& table : part.tables()) {
      merged.add_table(table);
    }
    for (const std::string& note : part.notes()) merged.add_note(note);
  }
  return merged;
}

report::MetricsReport SweepEngine::map_reports(
    const std::string& name, u64 count,
    const std::function<report::MetricsReport(u64)>& fn) const {
  // Slots first (MetricsReport has no default ctor — seed with an empty
  // name; every slot is overwritten by its job).
  std::vector<report::MetricsReport> parts(count,
                                           report::MetricsReport(""));
  run_jobs(count, workers_, [&](u64 index) { parts[index] = fn(index); });
  return merge_reports(name, parts);
}

report::MetricsReport SweepEngine::stats_report(
    const std::string& name) const {
  report::MetricsReport rep(name);
  last_stats().add_to(rep, "sweep.");
  return rep;
}

}  // namespace hulkv::batch
