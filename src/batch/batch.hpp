// Parallel sweep engine (hulkv::batch, DESIGN.md section 11).
//
// The evaluation is a family of independent simulations — every point of
// the Fig. 7/8 sweeps and the memory-system ablations builds its own SoC,
// runs a workload and reads back statistics. This layer farms those
// points out to a std::thread worker pool fed from a shared job queue,
// in the spirit of checkpointed platform instances (GVSoC) and
// farmed-out simulation jobs (FireSim-style flows).
//
// Determinism contract: every job writes only its own pre-allocated
// result slot, and callers assemble output from the slots in index
// order after the pool has drained. Output is therefore byte-identical
// for every worker count, including the serial --jobs 1 path (which
// runs inline on the calling thread, in index order, with no pool at
// all).
//
// Thread-safety contract (DESIGN.md section 11.4):
//   - one SoC per job, constructed (or snapshot-forked) inside the job;
//   - a shared SocSnapshot is immutable and may be restored from any
//     number of workers concurrently;
//   - the trace sink is a process-wide singleton and is NOT thread-safe:
//     run_jobs() refuses worker counts > 1 while tracing is enabled.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/soc.hpp"
#include "report/report.hpp"
#include "telemetry/histogram.hpp"

namespace hulkv::batch {

/// Default worker count: std::thread::hardware_concurrency(), at least 1.
u32 default_jobs();

/// Host-side statistics of one run_jobs() pool drain: throughput,
/// per-job wall-clock latency percentiles and worker utilization
/// (DESIGN.md §14.4). Collected on every run — the cost is two clock
/// reads per job, invisible next to a simulation job — and kept out of
/// bench stdout so figure-bench output stays byte-identical; consumers
/// are telemetry manifests, tools/hulkv-stats and tests.
struct SweepStats {
  u64 jobs = 0;
  u32 workers = 0;        // effective worker count after clamping
  u64 wall_ns = 0;        // queue open -> pool drained
  u64 busy_ns = 0;        // sum of per-job wall times
  u64 max_in_flight = 0;  // peak concurrently-running jobs observed
  telemetry::HistogramData latency;  // per-job wall ns
  /// Jobs in flight (this one included) sampled when job i was claimed;
  /// slot-per-job, so placement is deterministic at any worker count.
  std::vector<u64> in_flight_samples;

  double wall_seconds() const {
    return static_cast<double>(wall_ns) / 1e9;
  }
  /// Jobs per second of wall time (0 for an empty or unfinished run).
  double jobs_per_s() const;
  /// busy / (wall * workers): 1.0 = every worker ran jobs the whole
  /// drain; low values mean workers starved on an uneven grid.
  double utilization() const;

  /// Append jobs/s, p50/p90/p99 latency, utilization and queue-depth
  /// metrics (keys prefixed with `prefix`) to a report.
  void add_to(report::MetricsReport& rep, const std::string& prefix) const;
};

/// Stats of the most recent run_jobs() call. Owned by the (single)
/// orchestration thread that calls run_jobs; valid until the next call.
const SweepStats& last_sweep_stats();

/// Run `count` jobs — job(0) .. job(count-1), each exactly once — on
/// `workers` threads (0 = default_jobs()). Jobs are handed out from a
/// shared atomic queue; with an effective worker count of 1 they run
/// inline on the calling thread in index order. The first exception
/// thrown by a job is rethrown here after the pool drains.
/// Throws SimError when workers > 1 while tracing is enabled.
void run_jobs(u64 count, u32 workers, const std::function<void(u64)>& job);

/// An in-memory SoC checkpoint (the same container format Soc::save
/// writes to disk). Immutable once captured — any number of workers may
/// fork SoCs from one snapshot concurrently.
class SocSnapshot {
 public:
  SocSnapshot() = default;

  /// Checkpoint `soc` (plus optional extra sections, e.g. the offload
  /// runtime's kRuntime section).
  static SocSnapshot capture(
      core::HulkVSoc& soc,
      const core::HulkVSoc::SectionWriterFn& extra = nullptr);

  /// Wrap bytes previously produced by capture() or Soc::save().
  static SocSnapshot from_bytes(std::vector<u8> bytes);

  /// Restore this checkpoint into `soc` (built from the same config;
  /// the kMeta fingerprint is validated). Const and reentrant.
  void restore_into(core::HulkVSoc& soc,
                    const core::HulkVSoc::SectionReaderFn& extra =
                        nullptr) const;

  const std::vector<u8>& bytes() const { return bytes_; }
  u64 size_bytes() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

 private:
  std::vector<u8> bytes_;
};

/// Concatenate per-job reports into one: tables, metrics and notes are
/// appended in job-index order, so the merged report is independent of
/// the worker count.
report::MetricsReport merge_reports(
    const std::string& name, const std::vector<report::MetricsReport>& parts);

/// The sweep driver benches use: map a function over a parameter grid
/// (one fresh or snapshot-forked SoC per point) and collect results in
/// index order.
class SweepEngine {
 public:
  /// workers = 0 picks default_jobs().
  explicit SweepEngine(u32 workers = 0)
      : workers_(workers == 0 ? default_jobs() : workers) {}

  u32 workers() const { return workers_; }

  /// Host-side stats of the engine's most recent map/map_forked/
  /// map_reports drain: jobs/s, per-job latency percentiles, worker
  /// utilization (see SweepStats).
  const SweepStats& last_stats() const { return last_sweep_stats(); }

  /// `last_stats()` rendered as a MetricsReport ("sweep.jobs_per_s",
  /// "sweep.p50_ns", ...) for tools and tests. Not printed by the
  /// figure benches: their stdout is byte-identical at any worker
  /// count, and these numbers are host wall-clock, not simulation.
  report::MetricsReport stats_report(const std::string& name) const;

  /// Run fn(0) .. fn(count-1) on the pool; results land in index order.
  /// Each fn builds its own SoC (grid sweeps vary the SocConfig, so the
  /// points cannot share a snapshot — restore validates the config
  /// fingerprint).
  template <typename Result>
  std::vector<Result> map(u64 count,
                          const std::function<Result(u64)>& fn) const {
    std::vector<Result> out(count);
    run_jobs(count, workers_,
             [&](u64 index) { out[index] = fn(index); });
    return out;
  }

  /// Same-config sweep forked from a warmed checkpoint: every job gets
  /// a SoC from make_soc(), restored from `snap`, then fn runs on it.
  /// Skips re-simulating boot + warm-up for every point.
  template <typename Result>
  std::vector<Result> map_forked(
      const SocSnapshot& snap, u64 count,
      const std::function<std::unique_ptr<core::HulkVSoc>()>& make_soc,
      const std::function<Result(core::HulkVSoc&, u64)>& fn) const {
    std::vector<Result> out(count);
    run_jobs(count, workers_, [&](u64 index) {
      std::unique_ptr<core::HulkVSoc> soc = make_soc();
      snap.restore_into(*soc);
      out[index] = fn(*soc, index);
    });
    return out;
  }

  /// Per-job MetricsReport aggregation: run fn per index and merge the
  /// reports (index order) into one named report.
  report::MetricsReport map_reports(
      const std::string& name, u64 count,
      const std::function<report::MetricsReport(u64)>& fn) const;

 private:
  u32 workers_;
};

}  // namespace hulkv::batch
