#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace hulkv::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw SimError("serve client: " + what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  HULKV_CHECK(path.size() < sizeof(addr.sun_path),
              "serve client: unix socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(u16 port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send(const Request& request) {
  write_frame(fd_, encode_request(request));
}

bool Client::recv(Response* response) {
  std::vector<u8> payload;
  if (!read_frame(fd_, payload)) return false;
  *response = decode_response(payload);
  return true;
}

Response Client::call(const Request& request) {
  send(request);
  Response response;
  HULKV_CHECK(recv(&response),
              "serve client: connection closed before the response");
  return response;
}

void Client::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

}  // namespace hulkv::serve
