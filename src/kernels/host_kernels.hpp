// Host (CVA6) versions of the DSP kernels of Fig. 6: scalar RV64 code,
// full precision (int32 / fp32) — the host has no SIMD (paper section
// VI-A: "SIMD operations, not available in the CVA6 host core").
//
// Each builder bakes the problem size into the program (compile-time
// constants, as a compiler would) and takes data pointers as runtime
// arguments in a0..a2. Programs exit via the Linux exit syscall.
// Argument conventions are documented per builder.
#pragma once

#include "kernels/kernel.hpp"

namespace hulkv::kernels {

/// C = A*B (row-major int32). Args: a0=A, a1=B, a2=C.
KernelProgram host_matmul_i32(u32 m, u32 n, u32 k);

/// 3x3 valid convolution, int32. Args: a0=image, a1=kernel, a2=out.
KernelProgram host_conv3x3_i32(u32 h, u32 w);

/// FIR, int32, `taps` taps over `n` samples. Args: a0=x, a1=h, a2=y.
KernelProgram host_fir_i32(u32 n, u32 taps);

/// C = A*B (row-major fp32). Args: a0=A, a1=B, a2=C.
KernelProgram host_matmul_f32(u32 m, u32 n, u32 k);

/// y += alpha*x (fp32). Args: a0=x, a1=y, a2=address of fp32 alpha.
KernelProgram host_axpy_f32(u32 n);

/// Dot product (fp32); result bits returned as the exit code.
/// Args: a0=x, a1=y, a2=result address (fp32 stored there too).
KernelProgram host_dotp_f32(u32 n);

}  // namespace hulkv::kernels
