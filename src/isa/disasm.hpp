// Disassembler: decoded Instr (or raw word) -> human-readable text.
// Used by execution traces and test diagnostics.
#pragma once

#include <string>

#include "isa/instr.hpp"

namespace hulkv::isa {

/// Render a decoded instruction, e.g. "addi x5, x6, 4".
std::string disasm(const Instr& instr);

/// Decode and render a raw word.
std::string disasm_word(u32 word);

}  // namespace hulkv::isa
