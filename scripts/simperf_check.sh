#!/usr/bin/env bash
# Simulator-performance regression gate: re-run the bench/simperf ISS
# throughput benchmarks and compare instr/s against the checked-in
# baseline (BENCH_simperf.json, captured by scripts/simperf_baseline.sh).
# Fails when a benchmark's throughput drops more than the threshold
# (default 20%) below the baseline. Wired up as `make simperf-check`.
#
# Usage: scripts/simperf_check.sh [baseline.json]
#   SIMPERF_THRESHOLD_PCT=20   allowed regression in percent
#   SIMPERF_PROFILE_OFF_THRESHOLD_PCT   tighter gate for the profile-off
#       ISS rows (BM_HostIssLoop/BM_ClusterIssLoop). Defaults to
#       SIMPERF_THRESHOLD_PCT; set to 2 on quiet reference hardware to
#       pin the profiler's disabled-mode overhead (the dispatch loops
#       compile the bracket code out entirely when not collecting, so
#       any delta there is a real hot-path regression).
#   SIMPERF_TELEMETRY_OFF_THRESHOLD_PCT   same idea for the telemetry
#       spans: the plain ISS rows also run with telemetry disabled, so
#       this tightens their gate to whatever is smaller. Telemetry
#       collecting-mode overhead (BM_HostIssLoopTelemetry) is printed
#       informationally like the *Profile rows.
#   SIMPERF_SERVE_OBS_OFF_THRESHOLD_PCT   tighter gate for the serve
#       daemon's cached-point row (BM_ServePointCached, points/s): the
#       tracing-off request path (StageClock == nullptr) must not pay
#       for the DESIGN.md §17 observability plane. The tracing-on
#       overhead (BM_ServePointCachedObs) is printed informationally.
#
# The *IssLoopThreaded rows gate the threaded execution tier's absolute
# throughput like any other row; the threaded-vs-interp speedup is
# additionally printed informationally at the end.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
baseline="${1:-$repo_root/BENCH_simperf.json}"
threshold="${SIMPERF_THRESHOLD_PCT:-20}"
profile_off_threshold="${SIMPERF_PROFILE_OFF_THRESHOLD_PCT:-$threshold}"
telemetry_off_threshold="${SIMPERF_TELEMETRY_OFF_THRESHOLD_PCT:-$profile_off_threshold}"
serve_obs_off_threshold="${SIMPERF_SERVE_OBS_OFF_THRESHOLD_PCT:-$threshold}"

if [ ! -f "$baseline" ]; then
  echo "error: baseline $baseline not found." >&2
  echo "Capture one with scripts/simperf_baseline.sh and commit it." >&2
  exit 1
fi
if [ ! -x "$build_dir/bench/simperf" ]; then
  echo "error: $build_dir/bench/simperf not found. Build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

fresh="$(mktemp /tmp/simperf_check.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT

# Same shape as the baseline run: medians over 3 repetitions, filtered
# to the ISS throughput loops (the benches this gate guards).
"$build_dir/bench/simperf" \
  --benchmark_filter='BM_((Host|Cluster)IssLoop|ServePointCached)' \
  --benchmark_out="$fresh" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true > /dev/null

python3 - "$baseline" "$fresh" "$threshold" "$profile_off_threshold" \
  "$telemetry_off_threshold" "$serve_obs_off_threshold" << 'EOF'
import json
import sys

baseline_path, fresh_path = sys.argv[1], sys.argv[2]
threshold, profile_off_threshold = float(sys.argv[3]), float(sys.argv[4])
telemetry_off_threshold = float(sys.argv[5])
serve_obs_off_threshold = float(sys.argv[6])

# Profile-off ISS rows: gated by the (optionally tighter) profile-off
# threshold — these are the rows the cycle profiler must not slow down
# while disabled.
PROFILE_OFF_ROWS = ("BM_HostIssLoop", "BM_ClusterIssLoop")

# The serve daemon's tracing-off cached-point row (points/s): gated by
# the (optionally tighter) serve-obs-off threshold.
SERVE_OBS_OFF_ROW = "BM_ServePointCached"

def instr_rates(path):
    """{benchmark name: median rate} from a google-benchmark JSON.

    The rate is "instr/s" for the ISS rows, "points/s" for the serve
    rows — each benchmark exports exactly one of the two.
    """
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for run in data.get("benchmarks", []):
        if run.get("aggregate_name", "") not in ("", "median"):
            continue
        rate = run.get("instr/s", run.get("points/s"))
        if rate is None:
            continue
        name = run["run_name"] if "run_name" in run else run["name"]
        # Prefer the median aggregate over any raw repetition rows.
        if run.get("aggregate_name") == "median" or name not in rates:
            rates[name] = rate
    return rates

base = instr_rates(baseline_path)
fresh = instr_rates(fresh_path)
if not base:
    sys.exit(f"no instr/s entries in baseline {baseline_path}")

status = 0
for name, base_rate in sorted(base.items()):
    if name not in fresh:
        continue  # bench filtered out of this check run
    fresh_rate = fresh[name]
    delta_pct = (fresh_rate / base_rate - 1.0) * 100.0
    # The plain ISS rows run with both the profiler and telemetry
    # disabled: both off-mode gates apply — take the tighter one.
    if name in PROFILE_OFF_ROWS:
        allowed = min(profile_off_threshold, telemetry_off_threshold)
    elif name == SERVE_OBS_OFF_ROW:
        allowed = serve_obs_off_threshold
    else:
        allowed = threshold
    verdict = "ok"
    if delta_pct < -allowed:
        verdict = f"REGRESSION (allowed -{allowed:.0f}%)"
        status = 1
    unit = "points/s" if name.startswith(SERVE_OBS_OFF_ROW) else "instr/s"
    print(f"{name}: baseline {base_rate:,.0f} {unit}, "
          f"now {fresh_rate:,.0f} {unit} ({delta_pct:+.1f}%) {verdict}")

# Collecting-mode overhead (informational — profiling and telemetry are
# both opt-in): the *Profile/*Telemetry variants run the same workloads
# with the respective collector attached.
for name in PROFILE_OFF_ROWS:
    for suffix in ("Profile", "Telemetry"):
        variant = name + suffix
        if name in fresh and variant in fresh and fresh[name] > 0:
            overhead = (1.0 - fresh[variant] / fresh[name]) * 100.0
            print(f"{variant}: {fresh[variant]:,.0f} instr/s "
                  f"({overhead:.1f}% collecting overhead vs {name})")

# Serve tracing-on overhead (informational — tracing is on by default
# but the per-request cost is the point of the row): the Obs variant
# runs the same cache-hit path with a StageClock attached.
obs_row = SERVE_OBS_OFF_ROW + "Obs"
if SERVE_OBS_OFF_ROW in fresh and obs_row in fresh and \
        fresh[SERVE_OBS_OFF_ROW] > 0:
    overhead = (1.0 - fresh[obs_row] / fresh[SERVE_OBS_OFF_ROW]) * 100.0
    print(f"{obs_row}: {fresh[obs_row]:,.0f} points/s "
          f"({overhead:.1f}% tracing overhead vs {SERVE_OBS_OFF_ROW})")

# Threaded-tier speedup (informational — the regression loop above
# already gates both tiers' absolute throughput): how much faster the
# threaded-code tier retires instructions than the interpreter on the
# same workload (DESIGN.md §15; the *IssLoop rows pin kInterp, the
# *IssLoopThreaded rows pin kThreaded).
for name in PROFILE_OFF_ROWS:
    variant = name + "Threaded"
    if name in fresh and variant in fresh and fresh[name] > 0:
        speedup = fresh[variant] / fresh[name]
        print(f"{variant}: {fresh[variant]:,.0f} instr/s "
              f"({speedup:.2f}x speedup over {name})")

if status:
    print("simperf_check: FAILED")
else:
    print("simperf_check: OK")
sys.exit(status)
EOF
