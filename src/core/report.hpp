// Unified SoC statistics report: gathers every block's counters (cores,
// caches, LLC, DRAM device, DMAs, TCDM, bus) into one structured snapshot
// that examples and benches can diff across phases of a run. This is the
// software equivalent of the performance-counter dump the paper samples
// on the FPGA (section VI).
#pragma once

#include <string>
#include <vector>

#include "core/soc.hpp"

namespace hulkv::core {

/// Snapshot of every counter in the SoC at one instant.
class SocReport {
 public:
  /// Capture the current counters of all blocks.
  static SocReport capture(HulkVSoc& soc);

  /// Counter value (0 when the group or key does not exist).
  u64 get(const std::string& group, const std::string& key) const;

  /// Per-counter difference (this - baseline), clamped at zero.
  SocReport delta_since(const SocReport& baseline) const;

  /// Render all non-zero counters as "group.key = value" lines, grouped.
  std::string to_string() const;

  /// Names of the captured groups (stable order), including groups whose
  /// counters have not been touched yet.
  const std::vector<std::string>& groups() const { return groups_; }

 private:
  struct Entry {
    std::string group;
    std::string key;
    u64 value = 0;
  };
  std::vector<Entry> entries_;  // sorted by (group, key)
  std::vector<std::string> groups_;
};

}  // namespace hulkv::core
