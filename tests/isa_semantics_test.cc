// Directed semantic tests for (nearly) every implemented instruction on
// both cores: table-driven RV64 cases executed on the CVA6 ISS, and
// RV32+Xpulp cases executed on PMCA core 0. Complements isa_test.cc
// (encodings) and host_test/cluster_test (pipelines & devices): here the
// unit under test is each operation's arithmetic.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>

#include "common/bitutil.hpp"
#include "common/half.hpp"
#include "core/soc.hpp"
#include "isa/assembler.hpp"
#include "kernels/kernel.hpp"

namespace hulkv {
namespace {

using isa::Assembler;
using isa::Op;
using namespace isa::reg;

core::SocConfig fast_config() {
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  return cfg;
}

// ---------------------------------------------------------------------
// Host (RV64) table-driven ALU semantics.
// ---------------------------------------------------------------------

struct HostRCase {
  Op op;
  u64 a, b;
  u64 want;
};

class HostROp : public ::testing::TestWithParam<HostRCase> {};

TEST_P(HostROp, ComputesExpected) {
  const HostRCase& c = GetParam();
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  a.li(t0, static_cast<i64>(c.a));
  a.li(t1, static_cast<i64>(c.b));
  a.rr(c.op, a0, t0, t1);
  a.li(a7, 93);
  a.ecall();
  const auto run = kernels::run_host_program(soc, a.assemble(), {});
  EXPECT_EQ(run.exit_code, c.want)
      << isa::mnemonic(c.op) << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Alu, HostROp,
    ::testing::Values(
        HostRCase{Op::kAdd, 3, 4, 7},
        HostRCase{Op::kAdd, ~0ull, 1, 0},  // wraparound
        HostRCase{Op::kSub, 3, 4, ~0ull},
        HostRCase{Op::kSll, 1, 63, 1ull << 63},
        HostRCase{Op::kSll, 1, 64, 1},  // shift amount masked to 6 bits
        HostRCase{Op::kSrl, 0x8000000000000000ull, 63, 1},
        HostRCase{Op::kSra, 0x8000000000000000ull, 63, ~0ull},
        HostRCase{Op::kSlt, static_cast<u64>(-1), 0, 1},
        HostRCase{Op::kSltu, static_cast<u64>(-1), 0, 0},
        HostRCase{Op::kXor, 0xFF00, 0x0FF0, 0xF0F0},
        HostRCase{Op::kOr, 0xF0, 0x0F, 0xFF},
        HostRCase{Op::kAnd, 0xFF, 0x0F, 0x0F},
        HostRCase{Op::kMul, 0xFFFFFFFFull, 0xFFFFFFFFull,
                  0xFFFFFFFE00000001ull},
        HostRCase{Op::kMulhsu, static_cast<u64>(-1), static_cast<u64>(-1),
                  static_cast<u64>(-1)},  // (-1 * huge) >> 64
        HostRCase{Op::kDivu, 7, 2, 3},
        HostRCase{Op::kDivu, 7, 0, ~0ull},
        HostRCase{Op::kRemu, 7, 0, 7},
        HostRCase{Op::kRemu, 7, 2, 1},
        HostRCase{Op::kAddw, 0x7FFFFFFF, 1, 0xFFFFFFFF80000000ull},
        HostRCase{Op::kSubw, 0, 1, ~0ull},
        HostRCase{Op::kSrlw, 0x80000000ull, 31, 1},
        HostRCase{Op::kSraw, 0x80000000ull, 31, ~0ull},
        HostRCase{Op::kDivuw, 0xFFFFFFFFull, 2, 0x7FFFFFFF},
        HostRCase{Op::kRemuw, 0xFFFFFFFFull, 0, ~0ull},  // sign-extended
        HostRCase{Op::kRemw, static_cast<u64>(-7), 2, static_cast<u64>(-1)},
        HostRCase{Op::kMulw, 0x10000, 0x10000, 0}));

TEST(HostImm, SltiuTreatsImmAsUnsignedOfSext) {
  // sltiu a0, t0, -1 compares against 0xFFFF...FFFF.
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  a.li(t0, 5);
  a.ri(Op::kSltiu, a0, t0, -1);
  a.li(a7, 93);
  a.ecall();
  EXPECT_EQ(kernels::run_host_program(soc, a.assemble(), {}).exit_code, 1u);
}

TEST(HostImm, LwuZeroExtends) {
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  a.li(t0, core::layout::kSharedBase);
  a.li(t1, -1);
  a.sw(t1, 0, t0);
  a.load(Op::kLwu, a0, 0, t0);
  a.li(a7, 93);
  a.ecall();
  EXPECT_EQ(kernels::run_host_program(soc, a.assemble(), {}).exit_code,
            0xFFFFFFFFull);
}

TEST(HostImm, AuipcIsPcRelative) {
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  a.ri(Op::kAuipc, a0, 0, 0x1000);  // pc + 0x1000 at instruction 0
  a.li(a7, 93);
  a.ecall();
  EXPECT_EQ(kernels::run_host_program(soc, a.assemble(), {}).exit_code,
            core::layout::kHostCodeBase + 0x1000);
}

// ---------------------------------------------------------------------
// Host FP semantics.
// ---------------------------------------------------------------------

/// Run a host fragment that leaves a float's bits in a0.
u64 run_host_fp(const std::function<void(Assembler&)>& body) {
  core::HulkVSoc soc(fast_config());
  Assembler a(core::layout::kHostCodeBase, true);
  body(a);
  a.li(a7, 93);
  a.ecall();
  return kernels::run_host_program(soc, a.assemble(), {}).exit_code;
}

void load_f32(Assembler& a, u8 freg, float v) {
  a.li(t6, std::bit_cast<u32>(v));
  a.ri(Op::kFmvWX, freg, t6, 0);
}

void load_f64(Assembler& a, u8 freg, double v) {
  a.li(t6, static_cast<i64>(std::bit_cast<u64>(v)));
  a.ri(Op::kFmvDX, freg, t6, 0);
}

TEST(HostFp, SingleArithmeticAndCompare) {
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, 10.0f);
              load_f32(a, 2, 4.0f);
              a.rr(Op::kFsubS, 0, 1, 2);
              a.ri(Op::kFmvXW, a0, 0, 0);
            }),
            sign_extend(std::bit_cast<u32>(6.0f), 32) & 0xFFFFFFFFull);
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, 10.0f);
              load_f32(a, 2, 4.0f);
              a.rr(Op::kFdivS, 0, 1, 2);
              a.ri(Op::kFmvXW, a0, 0, 0);
            }),
            std::bit_cast<u32>(2.5f));
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, 9.0f);
              a.ri(Op::kFsqrtS, 0, 1, 0);
              a.ri(Op::kFmvXW, a0, 0, 0);
            }),
            std::bit_cast<u32>(3.0f));
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, -3.0f);
              load_f32(a, 2, 5.0f);
              a.rr(Op::kFminS, 0, 1, 2);
              a.ri(Op::kFmvXW, a0, 0, 0);
            }),
            sign_extend(std::bit_cast<u32>(-3.0f), 32) & 0xFFFFFFFFFFFFFFFFull);
}

TEST(HostFp, SignInjection) {
  // fsgnjn.s f0, f1, f1 == fneg.
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, 2.0f);
              a.rr(Op::kFsgnjnS, 0, 1, 1);
              a.ri(Op::kFmvXW, a0, 0, 0);
            }) &
                0xFFFFFFFFull,
            std::bit_cast<u32>(-2.0f));
  // fsgnjx.s f0, f1, f1 == fabs.
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, -2.0f);
              a.rr(Op::kFsgnjxS, 0, 1, 1);
              a.ri(Op::kFmvXW, a0, 0, 0);
            }),
            std::bit_cast<u32>(2.0f));
}

TEST(HostFp, ConversionSaturation) {
  // fcvt.w.s of NaN -> INT32_MAX (RISC-V spec).
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, std::numeric_limits<float>::quiet_NaN());
              a.ri(Op::kFcvtWS, a0, 1, 0);
            }),
            0x7FFFFFFFull);
  // fcvt.w.s of -1e10 saturates to INT32_MIN.
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, -1e10f);
              a.ri(Op::kFcvtWS, a0, 1, 0);
            }),
            0xFFFFFFFF80000000ull);
  // fcvt.l.s round-trips a large value through fcvt.s.l.
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              a.li(t0, 1 << 20);
              a.ri(Op::kFcvtSL, 1, t0, 0);
              a.ri(Op::kFcvtLS, a0, 1, 0);
            }),
            1ull << 20);
}

TEST(HostFp, NanComparesFalse) {
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, std::numeric_limits<float>::quiet_NaN());
              load_f32(a, 2, 1.0f);
              a.rr(Op::kFltS, a0, 1, 2);
            }),
            0u);
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f32(a, 1, std::numeric_limits<float>::quiet_NaN());
              a.rr(Op::kFeqS, a0, 1, 1);
            }),
            0u);
}

TEST(HostFp, DoubleArithmetic) {
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f64(a, 1, 1.0);
              load_f64(a, 2, 3.0);
              a.rr(Op::kFdivD, 0, 1, 2);
              a.ri(Op::kFmvXD, a0, 0, 0);
            }),
            std::bit_cast<u64>(1.0 / 3.0));
  // fmsub.d: 2*3 - 1 = 5.
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f64(a, 1, 2.0);
              load_f64(a, 2, 3.0);
              load_f64(a, 3, 1.0);
              a.r4(Op::kFmsubD, 0, 1, 2, 3);
              a.ri(Op::kFmvXD, a0, 0, 0);
            }),
            std::bit_cast<u64>(5.0));
  // fcvt.d.l and back.
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              a.li(t0, -123456789);
              a.ri(Op::kFcvtDL, 1, t0, 0);
              a.ri(Op::kFcvtLD, a0, 1, 0);
            }),
            static_cast<u64>(-123456789));
  // fsgnj.d moves signs across doubles.
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f64(a, 1, 4.0);
              load_f64(a, 2, -1.0);
              a.rr(Op::kFsgnjD, 0, 1, 2);
              a.ri(Op::kFmvXD, a0, 0, 0);
            }),
            std::bit_cast<u64>(-4.0));
  EXPECT_EQ(run_host_fp([](Assembler& a) {
              load_f64(a, 1, 1.5);
              load_f64(a, 2, 2.5);
              a.rr(Op::kFleD, a0, 1, 2);
            }),
            1u);
}

// ---------------------------------------------------------------------
// PMCA (RV32 + Xpulp) semantics: run a fragment on core 0 that stores
// results into a TCDM scratch area.
// ---------------------------------------------------------------------

constexpr Addr kTcdm = mem::map::kTcdmBase;
constexpr u32 kResults = static_cast<u32>(kTcdm) + 0xE00;
constexpr Addr kKernelL2 = mem::map::kL2Base;

/// Runs `body` on core 0 (other cores exit immediately); returns the
/// first `n` result words from the scratch area. Inside `body`, register
/// s10 holds the results base.
std::vector<u32> run0(core::HulkVSoc& soc,
                      const std::function<void(Assembler&)>& body,
                      size_t n) {
  Assembler a(0, false);
  a.ri(Op::kCsrrs, t0, 0, isa::csr::kMhartid);
  a.bnez(t0, "skip");
  a.li(s10, kResults);
  body(a);
  a.label("skip");
  a.li(a7, cluster::envcall::kExit);
  a.ecall();
  soc.load_program(kKernelL2, a.assemble());
  soc.cluster().run_kernel(soc.host().now(), kKernelL2,
                           static_cast<u32>(kTcdm));
  std::vector<u32> out(n);
  std::memcpy(out.data(),
              soc.cluster().tcdm().storage().data() + (kResults - kTcdm),
              n * 4);
  return out;
}

struct PmcaRCase {
  Op op;
  u32 a, b;
  u32 want;
};

class PmcaROp : public ::testing::TestWithParam<PmcaRCase> {};

TEST_P(PmcaROp, ComputesExpected) {
  const PmcaRCase& c = GetParam();
  core::HulkVSoc soc(fast_config());
  const auto out = run0(
      soc,
      [&](Assembler& a) {
        a.li(t1, static_cast<i64>(static_cast<i32>(c.a)));
        a.li(t2, static_cast<i64>(static_cast<i32>(c.b)));
        a.rr(c.op, t3, t1, t2);
        a.sw(t3, 0, s10);
      },
      1);
  EXPECT_EQ(out[0], c.want)
      << isa::mnemonic(c.op) << "(0x" << std::hex << c.a << ", 0x" << c.b
      << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Rv32AndXpulp, PmcaROp,
    ::testing::Values(
        // RV32 M edge cases.
        PmcaRCase{Op::kMul, 0xFFFF, 0x10001, 0xFFFFFFFF},
        PmcaRCase{Op::kMulh, 0x80000000u, 0x80000000u, 0x40000000},
        PmcaRCase{Op::kMulhu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFE},
        PmcaRCase{Op::kMulhsu, 0xFFFFFFFFu, 2, 0xFFFFFFFF},  // -1 * 2 >> 32
        PmcaRCase{Op::kDiv, 0x80000000u, 0xFFFFFFFFu, 0x80000000},
        PmcaRCase{Op::kDiv, 100, 0, 0xFFFFFFFF},
        PmcaRCase{Op::kRem, 0x80000000u, 0xFFFFFFFFu, 0},
        PmcaRCase{Op::kDivu, 0xFFFFFFFEu, 2, 0x7FFFFFFF},
        // Xpulp scalar DSP.
        PmcaRCase{Op::kPMin, 0xFFFFFFFBu, 3, 0xFFFFFFFB},  // min(-5, 3)
        PmcaRCase{Op::kPMax, 0xFFFFFFFBu, 3, 3},
        PmcaRCase{Op::kPMsu, 0, 0, 0},
        // Xpulp SIMD byte lanes.
        PmcaRCase{Op::kPvSubB, 0x05050505, 0x01020304, 0x04030201},
        PmcaRCase{Op::kPvMinB, 0x7F80FF01, 0x00000000, 0x0080FF00},
        PmcaRCase{Op::kPvMaxB, 0x7F80FF01, 0x00000000, 0x7F000001},
        // Xpulp SIMD halfword lanes.
        PmcaRCase{Op::kPvSubH, 0x00050003, 0x00010001, 0x00040002},
        PmcaRCase{Op::kPvMinH, 0x8000FFFF, 0x00000000, 0x8000FFFF},
        PmcaRCase{Op::kPvMaxH, 0x8000FFFF, 0x00000000, 0x00000000},
        PmcaRCase{Op::kPvSraH, 0xF0000010, 2, 0xFC000004},
        // Non-accumulating dot products.
        PmcaRCase{Op::kPvDotspB, 0x01010101, 0x02020202, 8},
        PmcaRCase{Op::kPvDotspH, 0x00020003, 0x00040005, 23}));

TEST(PmcaUnary, AbsAndExtensions) {
  core::HulkVSoc soc(fast_config());
  const auto out = run0(
      soc,
      [](Assembler& a) {
        a.li(t1, -42);
        a.ri(Op::kPAbs, t2, t1, 0);
        a.sw(t2, 0, s10);
        a.li(t1, 0x8081);
        a.ri(Op::kPExths, t2, t1, 0);
        a.sw(t2, 4, s10);
        a.ri(Op::kPExthz, t2, t1, 0);
        a.sw(t2, 8, s10);
        a.li(t1, 0x80);
        a.ri(Op::kPExtbs, t2, t1, 0);
        a.sw(t2, 12, s10);
        a.ri(Op::kPExtbz, t2, t1, 0);
        a.sw(t2, 16, s10);
      },
      5);
  EXPECT_EQ(out[0], 42u);
  EXPECT_EQ(out[1], 0xFFFF8081u);
  EXPECT_EQ(out[2], 0x00008081u);
  EXPECT_EQ(out[3], 0xFFFFFF80u);
  EXPECT_EQ(out[4], 0x00000080u);
}

TEST(PmcaMemory, PostIncrementAllWidths) {
  core::HulkVSoc soc(fast_config());
  const auto out = run0(
      soc,
      [](Assembler& a) {
        const u32 buf = static_cast<u32>(kTcdm) + 0xD00;
        a.li(t1, buf);
        a.li(t2, -2);  // bytes 0xFE 0xFF ...
        a.store(Op::kPShPost, t2, 2, t1);   // halfword, +2
        a.li(t2, 0x7F);
        a.store(Op::kPSbPost, t2, 1, t1);   // byte, +1
        // Read back with post-increment loads.
        a.li(t1, buf);
        a.load(Op::kPLhPost, t3, 2, t1);    // sign-extended -2
        a.load(Op::kPLbPost, t4, 1, t1);    // sign-extended 0x7F
        a.sw(t3, 0, s10);
        a.sw(t4, 4, s10);
        // Unsigned variants.
        a.li(t1, buf);
        a.load(Op::kPLhuPost, t3, 2, t1);
        a.load(Op::kPLbuPost, t4, 1, t1);
        a.sw(t3, 8, s10);
        a.sw(t4, 12, s10);
        a.sw(t1, 16, s10);  // pointer advanced by 3
      },
      5);
  EXPECT_EQ(static_cast<i32>(out[0]), -2);
  EXPECT_EQ(out[1], 0x7Fu);
  EXPECT_EQ(out[2], 0xFFFEu);
  EXPECT_EQ(out[3], 0x7Fu);
  EXPECT_EQ(out[4], static_cast<u32>(kTcdm) + 0xD00 + 3);
}

TEST(PmcaHwLoop, ExplicitStartEndCount) {
  // lp.starti / lp.endi / lp.counti assembled individually (not via
  // lp.setup): sum 10 iterations.
  core::HulkVSoc soc(fast_config());
  const auto out = run0(
      soc,
      [](Assembler& a) {
        a.li(t1, 0);
        a.lp_starti(0, "body");
        a.lp_endi(0, "end");
        a.lp_counti(0, 10);
        a.label("body");
        a.addi(t1, t1, 3);
        a.label("end");
        a.sw(t1, 0, s10);
      },
      1);
  EXPECT_EQ(out[0], 30u);
}

TEST(PmcaHwLoop, CountFromRegister) {
  core::HulkVSoc soc(fast_config());
  const auto out = run0(
      soc,
      [](Assembler& a) {
        a.li(t1, 0);
        a.li(t2, 25);
        a.lp_starti(0, "body");
        a.lp_endi(0, "end");
        a.lp_count(0, t2);
        a.label("body");
        a.addi(t1, t1, 1);
        a.label("end");
        a.sw(t1, 0, s10);
      },
      1);
  EXPECT_EQ(out[0], 25u);
}

TEST(PmcaFp, ScalarSingles) {
  core::HulkVSoc soc(fast_config());
  const auto out = run0(
      soc,
      [](Assembler& a) {
        a.li(t1, std::bit_cast<u32>(7.0f));
        a.ri(Op::kFmvWX, 1, t1, 0);
        a.li(t1, std::bit_cast<u32>(2.0f));
        a.ri(Op::kFmvWX, 2, t1, 0);
        a.rr(Op::kFdivS, 0, 1, 2);
        a.ri(Op::kFmvXW, t2, 0, 0);
        a.sw(t2, 0, s10);
        a.rr(Op::kFmulS, 0, 1, 2);  // 7*2
        a.ri(Op::kFmvXW, t2, 0, 0);
        a.sw(t2, 4, s10);
        a.ri(Op::kFcvtWS, t2, 0, 0);
        a.sw(t2, 8, s10);
      },
      3);
  EXPECT_EQ(std::bit_cast<float>(out[0]), 3.5f);
  EXPECT_EQ(std::bit_cast<float>(out[1]), 14.0f);
  EXPECT_EQ(out[2], 14u);
}

TEST(PmcaFp16, VectorAddSubMulAndCvt) {
  core::HulkVSoc soc(fast_config());
  const u16 one = float_to_half_bits(1.0f);
  const u16 two = float_to_half_bits(2.0f);
  const u16 three = float_to_half_bits(3.0f);
  const u32 a_pair = one | (static_cast<u32>(two) << 16);    // [1, 2]
  const u32 b_pair = two | (static_cast<u32>(three) << 16);  // [2, 3]
  const auto out = run0(
      soc,
      [&](Assembler& a) {
        a.li(t1, static_cast<i32>(a_pair));
        a.ri(Op::kFmvWX, 1, t1, 0);
        a.li(t1, static_cast<i32>(b_pair));
        a.ri(Op::kFmvWX, 2, t1, 0);
        a.rr(Op::kVfaddH, 3, 1, 2);
        a.ri(Op::kFmvXW, t2, 3, 0);
        a.sw(t2, 0, s10);
        a.rr(Op::kVfsubH, 3, 2, 1);
        a.ri(Op::kFmvXW, t2, 3, 0);
        a.sw(t2, 4, s10);
        a.rr(Op::kVfmulH, 3, 1, 2);
        a.ri(Op::kFmvXW, t2, 3, 0);
        a.sw(t2, 8, s10);
        // vfcvt.h.s packs two fp32 into fp16 lanes.
        a.li(t1, std::bit_cast<u32>(0.5f));
        a.ri(Op::kFmvWX, 4, t1, 0);
        a.li(t1, std::bit_cast<u32>(-0.25f));
        a.ri(Op::kFmvWX, 5, t1, 0);
        a.rr(Op::kVfcvtHS, 3, 4, 5);
        a.ri(Op::kFmvXW, t2, 3, 0);
        a.sw(t2, 12, s10);
      },
      4);
  const auto lane = [](u32 pair, int i) {
    return half_bits_to_float(static_cast<u16>(pair >> (16 * i)));
  };
  EXPECT_EQ(lane(out[0], 0), 3.0f);  // 1+2
  EXPECT_EQ(lane(out[0], 1), 5.0f);  // 2+3
  EXPECT_EQ(lane(out[1], 0), 1.0f);  // 2-1
  EXPECT_EQ(lane(out[1], 1), 1.0f);  // 3-2
  EXPECT_EQ(lane(out[2], 0), 2.0f);  // 1*2
  EXPECT_EQ(lane(out[2], 1), 6.0f);  // 2*3
  EXPECT_EQ(lane(out[3], 0), 0.5f);
  EXPECT_EQ(lane(out[3], 1), -0.25f);
}

TEST(PmcaMacLoad, MemoryOperandDotProducts) {
  core::HulkVSoc soc(fast_config());
  const auto out = run0(
      soc,
      [](Assembler& a) {
        const u32 buf = static_cast<u32>(kTcdm) + 0xD80;
        // Store vectors [1,2,3,4] (bytes) and [2,-1] (halves).
        a.li(t1, buf);
        a.li(t2, 0x04030201);
        a.sw(t2, 0, t1);
        a.li(t2, 0xFFFF0002);  // halves: 2, -1
        a.sw(t2, 4, t1);
        // pv.sdotsp.b.ld: acc 10 += [1,2,3,4].[1,1,1,1] = 20, ptr += 4.
        a.li(t3, 10);
        a.li(t4, 0x01010101);
        a.rr(Op::kPvSdotspBMem, t3, t1, t4);
        a.sw(t3, 0, s10);
        // Pointer now at the halfword vector.
        // pv.sdotsp.h.ld: acc 0 += 2*3 + (-1)*(-2) = 8.
        a.li(t3, 0);
        a.li(t4, (0xFFFEu << 16) | 3);  // halves: 3, -2
        a.rr(Op::kPvSdotspHMem, t3, t1, t4);
        a.sw(t3, 4, s10);
        a.sw(t1, 8, s10);  // pointer advanced by 8 in total
      },
      3);
  EXPECT_EQ(out[0], 20u);
  EXPECT_EQ(out[1], 8u);
  EXPECT_EQ(out[2], static_cast<u32>(kTcdm) + 0xD80 + 8);
}

TEST(PmcaClip, WidthSweep) {
  core::HulkVSoc soc(fast_config());
  for (const u32 width : {4u, 8u, 16u}) {
    const i32 hi = (1 << (width - 1)) - 1;
    const i32 lo = -(1 << (width - 1));
    const auto out = run0(
        soc,
        [&](Assembler& a) {
          a.li(t1, 100000);
          a.ri(Op::kPClip, t2, t1, static_cast<i32>(width));
          a.sw(t2, 0, s10);
          a.li(t1, -100000);
          a.ri(Op::kPClip, t2, t1, static_cast<i32>(width));
          a.sw(t2, 4, s10);
        },
        2);
    EXPECT_EQ(static_cast<i32>(out[0]), hi) << width;
    EXPECT_EQ(static_cast<i32>(out[1]), lo) << width;
  }
}

}  // namespace
}  // namespace hulkv
