// Interval abstract domain for the dataflow passes (DESIGN.md §13).
//
// Values are unsigned bit patterns of the target register width (32 for
// the PMCA, 64 for CVA6); an Interval is a contiguous unsigned range
// [lo, hi]. The domain replaces the analyzer's original constant-only
// propagation: a singleton interval is exactly the old "known constant",
// and every transfer below degrades to the old behaviour when its
// inputs are singletons (singleton arithmetic wraps exactly, like the
// hardware). Non-singleton results are kept only when the transfer can
// prove the result range is contiguous in the unsigned order —
// otherwise it returns top. That keeps the lattice shallow and every
// operation obviously sound.
//
// The lattice (per register width):
//
//     bottom  ⊑  [lo, hi]  ⊑  top = [0, 2^bits - 1]
//
// join/meet are interval hull/intersection; `widen` jumps an unstable
// bound to the lattice extreme, so fixpoints over CFGs with back edges
// (hardware loops, backward branches) terminate in a bounded number of
// visits per block.
#pragma once

#include "common/types.hpp"

namespace hulkv::analysis {

struct Interval {
  // Bottom is encoded as lo > hi; every other state has lo <= hi.
  u64 lo = 1;
  u64 hi = 0;

  static constexpr u64 mask_of(u32 bits) {
    return bits >= 64 ? ~u64{0} : (u64{1} << bits) - 1;
  }

  static constexpr Interval bottom() { return {1, 0}; }
  static constexpr Interval top(u32 bits) { return {0, mask_of(bits)}; }
  static constexpr Interval constant(u64 v, u32 bits) {
    return {v & mask_of(bits), v & mask_of(bits)};
  }
  /// [lo, hi] with lo <= hi (callers must normalise).
  static constexpr Interval range(u64 lo, u64 hi) { return {lo, hi}; }

  bool is_bottom() const { return lo > hi; }
  bool is_top(u32 bits) const { return lo == 0 && hi == mask_of(bits); }
  bool is_constant() const { return lo == hi; }
  u64 value() const { return lo; }  // valid only when is_constant()
  bool contains(u64 v) const { return v >= lo && v <= hi; }

  /// Lattice order: this ⊑ other (every value of this is in other).
  bool subset_of(const Interval& other) const {
    if (is_bottom()) return true;
    if (other.is_bottom()) return false;
    return lo >= other.lo && hi <= other.hi;
  }

  bool operator==(const Interval& other) const {
    if (is_bottom() && other.is_bottom()) return true;
    return lo == other.lo && hi == other.hi;
  }

  // ---- lattice operations ----

  static Interval join(const Interval& a, const Interval& b);
  static Interval meet(const Interval& a, const Interval& b);
  /// Widening: bounds of `next` that moved past `prev` jump to the
  /// lattice extreme. widen(prev, next) always subsumes both.
  static Interval widen(const Interval& prev, const Interval& next,
                        u32 bits);

  // ---- transfer functions (all wrap-aware modulo 2^bits) ----

  static Interval add(const Interval& a, const Interval& b, u32 bits);
  static Interval sub(const Interval& a, const Interval& b, u32 bits);
  static Interval add_const(const Interval& a, i64 imm, u32 bits);
  static Interval shl(const Interval& a, u32 shamt, u32 bits);
  static Interval shr(const Interval& a, u32 shamt, u32 bits);
  static Interval and_const(const Interval& a, i64 imm, u32 bits);
  static Interval or_const(const Interval& a, i64 imm, u32 bits);
  static Interval xor_const(const Interval& a, i64 imm, u32 bits);
  /// RV64 *W-ops: truncate to 32 bits and sign-extend into 64.
  static Interval sext32(const Interval& a);
};

}  // namespace hulkv::analysis
