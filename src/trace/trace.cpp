#include "trace/trace.hpp"

#include <algorithm>

namespace hulkv::trace {

namespace detail {
bool g_enabled = false;
}  // namespace detail

const char* event_name(Ev type) {
  switch (type) {
    case Ev::kRun: return "run";
    case Ev::kCommitBatch: return "commits";
    case Ev::kStall: return "stall";
    case Ev::kHitBatch: return "hits";
    case Ev::kHit: return "hit";
    case Ev::kMiss: return "miss";
    case Ev::kWriteback: return "writeback";
    case Ev::kEvict: return "evict";
    case Ev::kBypass: return "bypass";
    case Ev::kMemXact: return "mem_xact";
    case Ev::kRefreshCollision: return "refresh_collision";
    case Ev::kAccessBatch: return "accesses";
    case Ev::kConflict: return "bank_conflict";
    case Ev::kDmaJob: return "dma_job";
    case Ev::kBarrier: return "barrier";
    case Ev::kDispatch: return "dispatch";
    case Ev::kCodeLoad: return "code_load";
    case Ev::kMarshal: return "marshal";
    case Ev::kMailbox: return "mailbox";
    case Ev::kKernel: return "kernel";
    case Ev::kOffload: return "offload";
    case Ev::kStallCycles: return "stall_cycles";
  }
  return "unknown";
}

Phase event_phase(Ev type) {
  switch (type) {
    case Ev::kRun:
    case Ev::kMemXact:
    case Ev::kDmaJob:
    case Ev::kBarrier:
    case Ev::kCodeLoad:
    case Ev::kMarshal:
    case Ev::kKernel:
    case Ev::kOffload:
      return Phase::kComplete;
    case Ev::kCommitBatch:
    case Ev::kHitBatch:
    case Ev::kAccessBatch:
    case Ev::kStallCycles:
      return Phase::kCounter;
    case Ev::kStall:
    case Ev::kHit:
    case Ev::kMiss:
    case Ev::kWriteback:
    case Ev::kEvict:
    case Ev::kBypass:
    case Ev::kRefreshCollision:
    case Ev::kConflict:
    case Ev::kDispatch:
    case Ev::kMailbox:
      return Phase::kInstant;
  }
  return Phase::kInstant;
}

u64 pack_xact_arg(const XactArg& a) {
  return (a.write ? 1u : 0u) | (static_cast<u64>(a.bursts & 0x7FFF'FFFFu) << 1) |
         (static_cast<u64>(a.refresh_collisions) << 32);
}

XactArg unpack_xact_arg(u64 packed) {
  XactArg a;
  a.write = (packed & 1u) != 0;
  a.bursts = static_cast<u32>((packed >> 1) & 0x7FFF'FFFFu);
  a.refresh_collisions = static_cast<u32>(packed >> 32);
  return a;
}

TraceSink& TraceSink::instance() {
  static TraceSink sink;
  return sink;
}

void TraceSink::enable() {
  enabled_ = true;
  detail::g_enabled = true;
}

void TraceSink::disable() {
  enabled_ = false;
  detail::g_enabled = false;
}

void TraceSink::clear() {
  events_.clear();
  tracks_.clear();
  dropped_ = 0;
  max_ts_ = 0;
  ++generation_;  // invalidates every cached TrackHandle
}

u32 TraceSink::track(std::string_view name) {
  const u32 existing = find_track(name);
  if (existing != kNoTrack) return existing;
  tracks_.emplace_back(name);
  return static_cast<u32>(tracks_.size() - 1);
}

u32 TraceSink::resolve(TrackHandle& handle, std::string_view name) {
  if (handle.id == kNoTrack || handle.gen != generation_) {
    handle.id = track(name);
    handle.gen = generation_;
  }
  return handle.id;
}

u32 TraceSink::find_track(std::string_view name) const {
  const auto it = std::find(tracks_.begin(), tracks_.end(), name);
  return it == tracks_.end() ? kNoTrack
                             : static_cast<u32>(it - tracks_.begin());
}

void TraceSink::push(const Event& e) {
  if (capacity_ != 0 && events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  max_ts_ = std::max(max_ts_, e.ts + e.dur);
  events_.push_back(e);
}

void TraceSink::instant(u32 track_id, Ev type, Cycles ts, u64 value,
                        u64 arg) {
  if (!enabled_) return;
  push(Event{ts, 0, value, arg, track_id, type});
}

void TraceSink::complete(u32 track_id, Ev type, Cycles start, Cycles end,
                         u64 value, u64 arg) {
  if (!enabled_) return;
  const Cycles dur = end > start ? end - start : 0;
  push(Event{start, dur, value, arg, track_id, type});
}

void TraceSink::counter(u32 track_id, Ev type, Cycles ts, u64 delta) {
  if (!enabled_) return;
  push(Event{ts, 0, delta, 0, track_id, type});
}

}  // namespace hulkv::trace
