#include "runtime/hulk_malloc.hpp"

#include "common/bitutil.hpp"

namespace hulkv::runtime {

Addr Arena::alloc(u64 bytes, u64 align) {
  HULKV_CHECK(is_pow2(align), "arena alignment must be a power of two");
  HULKV_CHECK(bytes > 0, "zero-byte allocation");
  const Addr aligned = align_up(cursor_, align);
  HULKV_CHECK(aligned + bytes <= base_ + size_,
              "arena exhausted (asked " + std::to_string(bytes) + " B, " +
                  std::to_string(base_ + size_ - aligned) + " B left)");
  cursor_ = aligned + bytes;
  return aligned;
}

}  // namespace hulkv::runtime
