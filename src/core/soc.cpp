#include "core/soc.hpp"

#include "common/log.hpp"

namespace hulkv::core {

HulkVSoc::HulkVSoc(const SocConfig& config)
    : config_(config),
      mailbox_([this] { plic_.raise(kMailboxIrqSource); }),
      clint_([this] { return host_ ? host_->now() : 0; }) {
  l2_.resize(mem::map::kL2Size, 0);
  rom_.resize(mem::map::kBootRomSize, 0);

  // External memory device.
  switch (config_.main_memory) {
    case MainMemoryKind::kHyperRam:
      hyperram_ = std::make_unique<mem::HyperRamModel>(config_.hyperram);
      ext_mem_ = hyperram_.get();
      break;
    case MainMemoryKind::kDdr4:
      ddr4_ = std::make_unique<mem::Ddr4Model>(config_.ddr);
      ext_mem_ = ddr4_.get();
      break;
    case MainMemoryKind::kRpcDram:
      rpcdram_ = std::make_unique<mem::RpcDramModel>(config_.rpcdram);
      ext_mem_ = rpcdram_.get();
      break;
  }

  // LLC in front of the memory controller (optional, Figs. 7/8 sweeps).
  mem::MemTiming* dram_path = ext_mem_;
  if (config_.enable_llc) {
    llc_ = std::make_unique<mem::Llc>(config_.llc, ext_mem_);
    dram_path = llc_.get();
  }

  // Bus wiring.
  bus_.set_boot_rom(&rom_, &rom_timing_);
  bus_.set_l2(&l2_, &l2_timing_);
  bus_.set_dram(&dram_, dram_path);
  bus_.add_mmio(apbmap::kClintBase, apbmap::kClintSize, &clint_,
                &apb_timing_);
  bus_.add_mmio(apbmap::kPlicBase, apbmap::kPlicSize, &plic_, &apb_timing_);
  bus_.add_mmio(apbmap::kMailboxBase, apbmap::kMailboxSize, &mailbox_,
                &apb_timing_);
  bus_.add_mmio(apbmap::kUartBase, apbmap::kUartSize, &uart_, &apb_timing_);

  // IOPMP: grant the cluster the shared regions (L2SPM, external memory,
  // mailbox); everything else is denied (section III-C).
  iopmp_.add_region({mem::map::kL2Base, mem::map::kL2Size, true, true});
  iopmp_.add_region({mem::map::kDramBase, mem::map::kDramSize, true, true});
  iopmp_.add_region(
      {apbmap::kMailboxBase, apbmap::kMailboxSize, true, true});
  bus_.set_iopmp([this](Addr addr, u32 bytes, bool is_write) {
    return iopmp_.check(addr, bytes, is_write);
  });

  // Blocks.
  cluster_ = std::make_unique<cluster::Cluster>(config_.cluster, &bus_);
  bus_.set_tcdm(&cluster_->tcdm().storage(), &tcdm_axi_timing_);
  host_ = std::make_unique<host::Cva6Core>(config_.host, &bus_);
  udma_ = std::make_unique<mem::Udma>(&dram_, ext_mem_, &l2_,
                                      mem::map::kL2Base,
                                      mem::map::kDramBase);
  periph_udma_ = std::make_unique<host::PeriphUdma>(
      &l2_, mem::map::kL2Base, &l2_timing_,
      [this] { plic_.raise(kPeriphIrqSource); });

  const char* mem_name = "DDR4";
  if (config_.main_memory == MainMemoryKind::kHyperRam) mem_name = "HyperRAM";
  if (config_.main_memory == MainMemoryKind::kRpcDram) mem_name = "RPC-DRAM";
  log(LogLevel::kInfo, "soc", "HULK-V SoC up: ", mem_name,
      config_.enable_llc ? " + LLC" : " (no LLC)");
}

void HulkVSoc::load_program(Addr base, const std::vector<u32>& words) {
  HULKV_CHECK(!words.empty(), "empty program");
  write_mem(base, words.data(), words.size() * 4);
  // Scope the decode invalidation to the written range: loading a PMCA
  // kernel image no longer throws away the host core's decoded blocks
  // (and vice versa) unless the ranges actually overlap.
  const u64 bytes = words.size() * 4;
  if (host_) host_->invalidate_decode_cache(base, bytes);
  if (cluster_) cluster_->on_code_loaded(base, bytes);
}

void HulkVSoc::write_mem(Addr addr, const void* src, u64 bytes) {
  const u8* p = static_cast<const u8*>(src);
  // Chunk through the bus in page-sized pieces (the bus validates ranges).
  constexpr u64 kChunk = 4096;
  for (u64 off = 0; off < bytes; off += kChunk) {
    const u32 n = static_cast<u32>(std::min(kChunk, bytes - off));
    bus_.write_functional(addr + off, p + off, n);
  }
}

void HulkVSoc::read_mem(Addr addr, void* dst, u64 bytes) {
  u8* p = static_cast<u8*>(dst);
  constexpr u64 kChunk = 4096;
  for (u64 off = 0; off < bytes; off += kChunk) {
    const u32 n = static_cast<u32>(std::min(kChunk, bytes - off));
    bus_.read_functional(addr + off, p + off, n);
  }
}

}  // namespace hulkv::core
