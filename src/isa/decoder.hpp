// Instruction decoder: 32-bit word -> decoded Instr.
//
// Both instruction-set simulators pre-decode program images through this
// decoder (and cache the result), so decode speed only matters at load
// time. Unknown words decode to Op::kIllegal rather than throwing; the
// cores raise a SimError only if an illegal instruction is *executed*,
// mirroring a hardware illegal-instruction trap.
#pragma once

#include "isa/instr.hpp"

namespace hulkv::isa {

/// Decode one 32-bit instruction word.
Instr decode(u32 word);

}  // namespace hulkv::isa
