#include "isa/threaded.hpp"

#include "common/types.hpp"
#include "isa/block_cache.hpp"
#include "report/report.hpp"

namespace hulkv::isa {

namespace {
ExecTier g_default_tier = ExecTier::kThreaded;
}  // namespace

ExecTier parse_tier(const std::string& name) {
  if (name == "interp") return ExecTier::kInterp;
  if (name == "threaded") return ExecTier::kThreaded;
  throw SimError("unknown execution tier '" + name +
                 "' (expected interp|threaded)");
}

const char* tier_name(ExecTier tier) {
  return tier == ExecTier::kInterp ? "interp" : "threaded";
}

void set_default_tier(ExecTier tier) { g_default_tier = tier; }

ExecTier default_tier() { return g_default_tier; }

void configure_tier(const report::BenchOptions& options) {
  if (!options.tier.empty()) set_default_tier(parse_tier(options.tier));
}

namespace threaded {

void lower(const DecodedBlock& block, u32 line_bytes, bool want_shared,
           HandlerResolver resolve, const void* ctx, ThreadedBlock* out) {
  out->code.clear();
  out->code.reserve(block.instrs.size());
  out->control_tail = false;
  for (size_t i = 0; i < block.instrs.size(); ++i) {
    const Instr& in = block.instrs[i];
    const HandlerInfo info = resolve(in.op, ctx);
    ThreadedInstr t;
    t.fn = info.fn;
    t.rd = in.rd;
    t.rs1 = in.rs1;
    t.rs2 = in.rs2;
    t.rs3 = in.rs3;
    t.imm = in.imm;
    t.cyc = info.static_cycles;
    t.pc = block.start + 4 * i;
    if (i == 0) {
      t.flags |= kFlagLineCheck;
    } else if (t.pc % line_bytes == 0) {
      // Provably entering a new fetch line: within a straight-line run
      // the line register only ever advances, so the compare the
      // interpreter's fetch_timing does is statically true here.
      t.flags |= kFlagLineEntry;
    }
    if (info.fn == nullptr) t.flags |= kFlagDeopt;
    if (want_shared && ((block.shared_mask >> i) & 1) != 0) {
      t.flags |= kFlagShared;
    }
    out->code.push_back(t);
  }
  if (!block.instrs.empty()) {
    const Op tail = block.instrs.back().op;
    const bool is_control =
        tail == Op::kJal || tail == Op::kJalr || is_branch(tail);
    out->control_tail =
        is_control && (out->code.back().flags & kFlagDeopt) == 0;
  }
  // Stamped last: a throw above leaves the lowering stale (generation
  // mismatch) so the next dispatch redoes it, mirroring
  // BlockCache::translate.
  out->generation = block.generation;
}

}  // namespace threaded
}  // namespace hulkv::isa
