#include "mem/llc.hpp"

#include "profile/attr.hpp"

namespace hulkv::mem {

namespace {

/// External-memory transaction with its span attributed to the device
/// (kExtMemWait) when the cycle profiler is collecting.
Cycles ext_access(MemTiming* ext, Cycles now, Addr addr, u32 bytes,
                  bool is_write) {
  const Cycles done = ext->access(now, addr, bytes, is_write);
  profile::add(profile::Reason::kExtMemWait, done - now);
  return done;
}

}  // namespace

Llc::Llc(const LlcConfig& config, MemTiming* ext_mem)
    : config_(config),
      ext_mem_(ext_mem),
      tags_(config.num_lines, config.num_ways, config.line_bytes()),
      stats_("llc"),
      ctr_bypass_(stats_.counter("bypass")),
      ctr_reads_(stats_.counter("reads")),
      ctr_writes_(stats_.counter("writes")),
      ctr_hits_(stats_.counter("hits")),
      ctr_misses_(stats_.counter("misses")),
      ctr_evictions_(stats_.counter("evictions")) {
  HULKV_CHECK(ext_mem != nullptr, "LLC needs an external memory model");
}

Cycles Llc::access(Cycles now, Addr addr, u32 bytes, bool is_write) {
  HULKV_CHECK(bytes > 0, "zero-length LLC access");
  // AXI filter: outside the cacheable region, propagate directly.
  if (addr < config_.cacheable_base ||
      addr >= config_.cacheable_base + config_.cacheable_size) {
    ctr_bypass_ += 1;
    if (trace::enabled()) {
      auto& sink = trace::sink();
      sink.instant(sink.resolve(trace_track_, stats_.name()),
                   trace::Ev::kBypass, now, addr, is_write ? 1 : 0);
    }
    return ext_access(ext_mem_, now, addr, bytes, is_write);
  }

  const u32 line = config_.line_bytes();
  const Addr first = tags_.line_of(addr);
  const Addr last = tags_.line_of(addr + bytes - 1);
  Cycles done = now;
  for (Addr a = first; a <= last; a += line) {
    done = access_line(done, a, is_write);
  }
  return done;
}

Cycles Llc::access_line(Cycles now, Addr line_addr, bool is_write) {
  (is_write ? ctr_writes_ : ctr_reads_) += 1;
  const u64 claimed_before = profile::claimed();
  Cycles t = now + config_.tag_latency;  // descriptor tag lookup (1 cycle)

  if (tags_.lookup(line_addr)) {
    ctr_hits_ += 1;
    if (trace::enabled()) {
      auto& sink = trace::sink();
      sink.instant(sink.resolve(trace_track_, stats_.name()),
                   trace::Ev::kHit, now, line_addr, is_write ? 1 : 0);
    }
    if (is_write) tags_.mark_dirty(line_addr);
    profile::add(profile::Reason::kLlcWait,
                 t + config_.hit_latency - now);
    return t + config_.hit_latency;
  }

  ctr_misses_ += 1;
  if (trace::enabled()) {
    auto& sink = trace::sink();
    sink.instant(sink.resolve(trace_track_, stats_.name()),
                 trace::Ev::kMiss, now, line_addr, is_write ? 1 : 0);
  }
  const SetAssocTags::Victim victim = tags_.fill(line_addr);
  if (victim.valid && victim.dirty) {
    // Eviction: AXI write transaction on the output port.
    ctr_evictions_ += 1;
    if (trace::enabled()) {
      auto& sink = trace::sink();
      sink.instant(sink.resolve(trace_track_, stats_.name()),
                   trace::Ev::kEvict, t, victim.line_addr);
    }
    t = ext_access(ext_mem_, t, victim.line_addr, config_.line_bytes(),
                   /*is_write=*/true);
  }
  // Refill: AXI read transaction on the output port.
  t = ext_access(ext_mem_, t, line_addr, config_.line_bytes(),
                 /*is_write=*/false);
  if (is_write) tags_.mark_dirty(line_addr);
  // The device claimed its share above; the leftover span (tag + hit
  // pipeline around the refill) is the LLC's own.
  profile::add(profile::Reason::kLlcWait,
               profile::own_share(t + config_.hit_latency - now,
                                  profile::claimed() - claimed_before));
  return t + config_.hit_latency;
}

double Llc::hit_ratio() const {
  const u64 total = stats_.get("reads") + stats_.get("writes");
  return total == 0 ? 0.0 : static_cast<double>(stats_.get("hits")) /
                                static_cast<double>(total);
}

void Llc::reset() {
  tags_.reset();
  stats_.reset();
}

void Llc::serialize(snapshot::Archive& ar) {
  tags_.serialize(ar);
  stats_.serialize(ar);
}

}  // namespace hulkv::mem
