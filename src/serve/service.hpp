// Point executor of the serve daemon: warm-fork dispatch with result
// caching and cooperative cancellation (DESIGN.md §16.4-16.5).
//
// run_point() is the whole data path of one simulation point:
//
//   cache lookup -> warm-pool fork -> prepare -> chunked host run
//
// The host run executes in bounded segments (Cva6Core::run(budget)),
// polling the caller's cancel callback between chunks, so a deadline
// or a shutdown interrupts a running point within one chunk's wall
// time without leaving shared state behind (the forked SoC is local to
// the call). Bounded-budget segments retire the same cycles as one
// unbounded run (pinned by threaded_test), so chunking never changes
// results.
#pragma once

#include <atomic>
#include <functional>

#include "serve/cache.hpp"
#include "serve/obs.hpp"
#include "serve/warm_pool.hpp"

namespace hulkv::serve {

/// Host instructions per run segment between cancellation polls.
inline constexpr u64 kRunChunkInstructions = 1u << 20;

class Service {
 public:
  /// Poll between run chunks: kOk = keep going, anything else aborts
  /// the point with that status (kDeadlineExpired / kShuttingDown).
  using CancelFn = std::function<Status()>;

  struct PointResult {
    Status status = Status::kOk;
    ResultRow row;
    bool cache_hit = false;
  };

  /// Simulate one point (or serve it from the cache). `no_cache`
  /// bypasses both lookup and insert. Throws SimError only on invalid
  /// points — simulation itself cannot throw for catalogue workloads.
  /// With a non-null `clock` the cache-lookup / warm-fork / execute
  /// stages are wall-clocked into it; nullptr is the tracing-off path
  /// and reads no clock at all (gated by simperf).
  PointResult run_point(const PointParams& point, bool no_cache,
                        const CancelFn& cancelled,
                        obs::StageClock* clock = nullptr);

  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  WarmPool& warm_pool() { return warm_pool_; }
  /// Warm-pool entries built so far (each paid one cold boot).
  u64 warm_pool_cold_builds() const { return warm_pool_.cold_builds(); }
  /// Points that ran a simulation (cache misses + no-cache runs).
  u64 points_simulated() const { return points_simulated_.load(); }

 private:
  WarmPool warm_pool_;
  ResultCache cache_;
  std::atomic<u64> points_simulated_{0};
};

}  // namespace hulkv::serve
