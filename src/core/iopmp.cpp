#include "core/iopmp.hpp"

namespace hulkv::core {

void Iopmp::add_region(const Region& region) {
  HULKV_CHECK(region.size > 0, "empty IOPMP region");
  regions_.push_back(region);
}

bool Iopmp::check(Addr addr, u32 bytes, bool is_write) const {
  if (!enforcing_) return true;
  for (const Region& r : regions_) {
    if (addr >= r.base && addr + bytes <= r.base + r.size &&
        (is_write ? r.allow_write : r.allow_read)) {
      return true;
    }
  }
  return false;
}

}  // namespace hulkv::core
