#include "serve/cache.hpp"

#include "core/soc.hpp"
#include "serve/workload.hpp"
#include "snapshot/archive.hpp"

namespace hulkv::serve {

CacheKey point_cache_key(const PointParams& point) {
  return {core::HulkVSoc::fingerprint_of(point_config(point)),
          workload_digest(point.workload), params_digest(point)};
}

size_t ResultCache::KeyHash::operator()(const CacheKey& k) const {
  u64 h = snapshot::kFnvOffset;
  h = snapshot::fnv1a(h, &k.config_fingerprint, sizeof(u64));
  h = snapshot::fnv1a(h, &k.program_digest, sizeof(u64));
  h = snapshot::fnv1a(h, &k.params_digest, sizeof(u64));
  return static_cast<size_t>(h);
}

bool ResultCache::lookup(const CacheKey& key, ResultRow* row) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  *row = it->second;
  return true;
}

void ResultCache::insert(const CacheKey& key, const ResultRow& row) {
  std::lock_guard<std::mutex> lock(mu_);
  if (map_.size() >= max_entries_ && map_.find(key) == map_.end()) return;
  map_[key] = row;
}

u64 ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

u64 ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

u64 ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace hulkv::serve
