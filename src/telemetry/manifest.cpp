#include "telemetry/manifest.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "isa/threaded.hpp"
#include "report/report.hpp"

namespace hulkv::telemetry {

namespace {

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) != 0) return "unknown";
  return buf;
}

void append_sweep(std::ostringstream& os, const SweepSummary& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"jobs\":%llu,\"workers\":%u,\"wall_ns\":%llu,"
                "\"busy_ns\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                "\"max_in_flight\":%llu,\"jobs_per_s\":%.3f,"
                "\"utilization\":%.4f}",
                static_cast<unsigned long long>(s.jobs), s.workers,
                static_cast<unsigned long long>(s.wall_ns),
                static_cast<unsigned long long>(s.busy_ns),
                static_cast<unsigned long long>(s.p50_ns),
                static_cast<unsigned long long>(s.p99_ns),
                static_cast<unsigned long long>(s.max_in_flight),
                s.jobs_per_s, s.utilization);
  os << buf;
}

}  // namespace

std::string Manifest::to_json_line() const {
  std::ostringstream os;
  os << "{\"schema_version\":" << schema_version
     << ",\"kind\":" << json_quote(kind)
     << ",\"bench\":" << json_quote(bench)
     << ",\"tier\":" << json_quote(tier)
     << ",\"timestamp_ns\":" << timestamp_ns
     << ",\"host\":{\"hostname\":" << json_quote(hostname)
     << ",\"pid\":" << pid << ",\"hw_concurrency\":" << hw_concurrency
     << "}";

  os << ",\"config_fingerprints\":[";
  for (size_t i = 0; i < config_fingerprints.size(); ++i) {
    if (i != 0) os << ",";
    os << config_fingerprints[i];
  }
  // Array of {name, digest} objects: the same digest can carry several
  // names (kernel name + the generic load-path name) and the same name
  // several digests, so an object keyed by name would drop entries.
  os << "],\"program_digests\":[";
  for (size_t i = 0; i < program_digests.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"name\":" << json_quote(program_digests[i].first)
       << ",\"digest\":" << program_digests[i].second << "}";
  }
  os << "],\"metrics\":{";
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (i != 0) os << ",";
    os << json_quote(metrics[i].key) << ":{\"value\":"
       << metrics[i].value_json << ",\"unit\":" << json_quote(metrics[i].unit)
       << "}";
  }
  os << "},\"phases\":{";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i != 0) os << ",";
    os << json_quote(phases[i].phase) << ":"
       << phases[i].latency.summary_json();
  }
  os << "},\"sweeps\":[";
  for (size_t i = 0; i < sweeps.size(); ++i) {
    if (i != 0) os << ",";
    append_sweep(os, sweeps[i]);
  }
  os << "]";
  if (serve_requests.present) {
    os << ",\"serve_requests\":{\"outcomes\":{";
    for (size_t i = 0; i < serve_requests.outcomes.size(); ++i) {
      if (i != 0) os << ",";
      os << json_quote(serve_requests.outcomes[i].first) << ":"
         << serve_requests.outcomes[i].second;
    }
    os << "},\"stages\":{";
    for (size_t i = 0; i < serve_requests.stages.size(); ++i) {
      if (i != 0) os << ",";
      os << json_quote(serve_requests.stages[i].phase) << ":"
         << serve_requests.stages[i].latency.summary_json();
    }
    os << "}}";
  }
  os << "}";
  return os.str();
}

Manifest build_manifest(const report::MetricsReport& rep,
                        const Registry& reg) {
  Manifest m;
  m.bench = rep.name();
  m.tier = isa::tier_name(isa::default_tier());
  m.timestamp_ns = reg.wall_anchor_ns();
  m.hostname = host_name();
  m.pid = static_cast<u32>(getpid());
  m.hw_concurrency = std::thread::hardware_concurrency();
  m.config_fingerprints = reg.config_fingerprints();
  m.program_digests = reg.program_digests();
  for (const auto& metric : rep.metrics()) {
    m.metrics.push_back(
        {metric.key, metric.value.to_json(), metric.unit});
  }
  for (size_t p = 0; p < kNumSpanPhases; ++p) {
    const auto phase = static_cast<SpanPhase>(p);
    HistogramData hist = reg.phase_histogram(phase);
    if (hist.count() == 0) continue;
    m.phases.push_back({phase_name(phase), std::move(hist)});
  }
  m.sweeps = reg.sweeps();
  return m;
}

std::string append_manifest(const std::string& dir,
                            const Manifest& manifest) {
  if (mkdir(dir.c_str(), 0775) != 0 && errno != EEXIST) {
    throw SimError("telemetry: cannot create manifest directory " + dir);
  }
  const std::string name =
      manifest.bench.empty() ? std::string("run") : manifest.bench;
  const std::string path = dir + "/" + name + ".jsonl";
  std::ofstream out(path, std::ios::app);
  if (!out) throw SimError("telemetry: cannot open manifest file " + path);
  out << manifest.to_json_line() << "\n";
  if (!out) throw SimError("telemetry: failed writing manifest " + path);
  return path;
}

void finish_bench(const report::MetricsReport& rep,
                  const report::BenchOptions& options) {
  if (!options.telemetry) return;
  Registry& reg = registry();
  const Manifest manifest = build_manifest(rep, reg);
  const std::string dir =
      options.telemetry_dir.empty() ? std::string("runs")
                                    : options.telemetry_dir;
  const std::string path = append_manifest(dir, manifest);
  // stderr, not stdout: bench stdout must stay byte-identical with
  // telemetry on or off (pinned by determinism_test).
  std::fprintf(stderr, "[telemetry] appended run manifest to %s\n",
               path.c_str());
  reg.disable();
}

}  // namespace hulkv::telemetry
