// Deterministic pseudo-random number generator (xoshiro256**) used by the
// workload generators and property tests. The simulator itself never calls
// a global RNG: reproducibility of every experiment requires all randomness
// to flow from explicitly seeded generators.
#pragma once

#include "common/types.hpp"

namespace hulkv {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Deterministic, fast, and good enough statistical quality for workload
/// generation; not cryptographic.
class Xoshiro256 {
 public:
  explicit Xoshiro256(u64 seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    u64 z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      u64 x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) (bound > 0). Uses rejection-free
  /// multiply-shift; slight bias is irrelevant for workload generation.
  u64 next_below(u64 bound) { return next() % bound; }

  /// Uniform integer in [lo, hi].
  i64 next_range(i64 lo, i64 hi) {
    return lo + static_cast<i64>(next_below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform float in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr u64 rotl(u64 x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  u64 state_[4] = {};
};

}  // namespace hulkv
