#include "trace/windowed.hpp"

#include <algorithm>
#include <numeric>

namespace hulkv::trace {

const Series* Windowed::series(u32 track, Ev type) const {
  const auto it =
      series_map.find({track, static_cast<u16>(type)});
  return it == series_map.end() ? nullptr : &it->second;
}

u64 Windowed::total_value(u32 track, Ev type) const {
  const Series* s = series(track, type);
  if (s == nullptr) return 0;
  return std::accumulate(s->value.begin(), s->value.end(), u64{0});
}

u64 Windowed::total_count(u32 track, Ev type) const {
  const Series* s = series(track, type);
  if (s == nullptr) return 0;
  return std::accumulate(s->count.begin(), s->count.end(), u64{0});
}

Cycles Windowed::total_busy(u32 track, Ev type) const {
  const Series* s = series(track, type);
  if (s == nullptr) return 0;
  return std::accumulate(s->busy.begin(), s->busy.end(), Cycles{0});
}

std::vector<Cycles> Windowed::busy_across(const std::vector<u32>& tracks,
                                          Ev type) const {
  std::vector<Cycles> merged(num_windows, 0);
  for (const u32 t : tracks) {
    const Series* s = series(t, type);
    if (s == nullptr) continue;
    for (size_t w = 0; w < num_windows; ++w) merged[w] += s->busy[w];
  }
  return merged;
}

Windowed aggregate(const TraceSink& sink, Cycles window_cycles,
                   Cycles span) {
  HULKV_CHECK(window_cycles > 0, "window width must be positive");
  Windowed out;
  out.window = window_cycles;
  if (span == 0) span = sink.max_timestamp();
  const size_t windows =
      span == 0 ? 1
                : static_cast<size_t>((span + window_cycles - 1) /
                                      window_cycles);
  out.num_windows = std::max<size_t>(windows, 1);
  out.span = out.num_windows * window_cycles;

  const auto series_for = [&](const Event& e) -> Series& {
    Series& s = out.series_map[{e.track, static_cast<u16>(e.type)}];
    if (s.value.empty()) {
      s.value.assign(out.num_windows, 0);
      s.count.assign(out.num_windows, 0);
      s.busy.assign(out.num_windows, 0);
    }
    return s;
  };

  for (const Event& e : sink.events()) {
    if (e.ts >= out.span) continue;
    Series& s = series_for(e);
    const size_t w0 = static_cast<size_t>(e.ts / window_cycles);
    s.count[w0] += 1;
    s.value[w0] += e.value;
    if (event_phase(e.type) != Phase::kComplete || e.dur == 0) continue;
    // Split the duration across every window it overlaps; the clipped
    // tail beyond `span` is dropped.
    const Cycles end = std::min(e.ts + e.dur, out.span);
    Cycles t = e.ts;
    size_t w = w0;
    while (t < end) {
      const Cycles win_end = static_cast<Cycles>(w + 1) * window_cycles;
      const Cycles chunk = std::min(end, win_end) - t;
      s.busy[w] += chunk;
      t += chunk;
      ++w;
    }
  }
  return out;
}

}  // namespace hulkv::trace
