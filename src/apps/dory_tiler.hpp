// DORY-style memory-aware deployment (paper section VI-C, using [20]).
//
// DORY tiles each layer across the three-level memory hierarchy with
// double buffering so DMA and compute overlap:
//
//   external memory --uDMA--> L2SPM --cluster DMA--> TCDM --> PMCA cores
//
// This scheduler reproduces that flow against the simulator's real device
// models: uDMA jobs occupy the HyperRAM/DDR device, cluster-DMA jobs
// occupy the L2 port, and tile compute advances at a calibrated
// MACs/cycle rate (measured from the int8 matmul kernel on the ISS — see
// bench/fig9_energy_eff.cpp). The resulting per-network timing yields the
// computation-to-communication ratio (CCR_hyper) and GOps that Fig. 9
// plots, for both memory configurations.
#pragma once

#include "apps/dnn.hpp"
#include "core/soc.hpp"

namespace hulkv::apps {

struct DoryConfig {
  u64 l1_budget = 96 * 1024;   // TCDM bytes usable for tiles
  u64 l2_budget = 400 * 1024;  // L2SPM bytes usable for staging
  double macs_per_cycle = 14.0;  // calibrated cluster int8 throughput
};

struct LayerSchedule {
  std::string name;
  u64 macs = 0;
  u64 ext_bytes = 0;       // traffic to/from external memory
  u32 tiles = 0;
  Cycles compute_cycles = 0;  // pure compute time of the layer
  Cycles total_cycles = 0;    // wall time incl. non-overlapped DMA
};

struct NetworkSchedule {
  std::string network;
  std::vector<LayerSchedule> layers;
  Cycles total_cycles = 0;
  Cycles compute_cycles = 0;
  Cycles ext_busy_cycles = 0;  // external-memory device busy time
  u64 macs = 0;
  u64 ext_bytes = 0;

  /// CCR as the paper defines it: computing time over main-memory read
  /// time, assuming full overlap of the two phases.
  double ccr() const {
    return ext_busy_cycles == 0
               ? 1e9
               : static_cast<double>(compute_cycles) /
                     static_cast<double>(ext_busy_cycles);
  }
};

class DoryTiler {
 public:
  DoryTiler(core::HulkVSoc* soc, const DoryConfig& config);

  /// Schedule and time a full network inference starting at `start`.
  NetworkSchedule run(const Network& network, Cycles start = 0);

 private:
  LayerSchedule run_layer(const ConvLayer& layer, Cycles& now);

  core::HulkVSoc* soc_;
  DoryConfig config_;
};

}  // namespace hulkv::apps
