#include "snapshot/archive.hpp"

#include <cstring>

namespace hulkv::snapshot {

void Archive::bytes(void* data, u64 len) {
  switch (mode_) {
    case Mode::kSave:
      out_->insert(out_->end(), static_cast<const u8*>(data),
                   static_cast<const u8*>(data) + len);
      break;
    case Mode::kLoad:
      if (in_pos_ + len > in_size_) {
        throw SimError("snapshot: truncated section (wanted " +
                       std::to_string(len) + " bytes, " +
                       std::to_string(in_size_ - in_pos_) + " left)");
      }
      std::memcpy(data, in_ + in_pos_, len);
      in_pos_ += len;
      break;
    case Mode::kHash:
      hash_ = fnv1a(hash_, data, len);
      break;
  }
}

void Archive::str(std::string& s) {
  u64 len = s.size();
  pod(len);
  if (loading()) s.resize(len);
  if (len != 0) bytes(s.data(), len);
}

void Archive::bool_vec(std::vector<bool>& v) {
  u64 count = v.size();
  pod(count);
  std::vector<u8> raw(count);
  if (!loading()) {
    for (u64 i = 0; i < count; ++i) raw[i] = v[i] ? 1 : 0;
  }
  if (count != 0) bytes(raw.data(), count);
  if (loading()) {
    v.assign(count, false);
    for (u64 i = 0; i < count; ++i) v[i] = raw[i] != 0;
  }
}

}  // namespace hulkv::snapshot
