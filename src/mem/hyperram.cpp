#include "mem/hyperram.hpp"

#include <algorithm>

#include "common/bitutil.hpp"

namespace hulkv::mem {

HyperRamModel::HyperRamModel(const HyperRamConfig& config)
    : config_(config),
      next_refresh_(config.refresh_period),
      stats_("hyperram"),
      ctr_reads_(stats_.counter("reads")),
      ctr_writes_(stats_.counter("writes")),
      ctr_bytes_read_(stats_.counter("bytes_read")),
      ctr_bytes_written_(stats_.counter("bytes_written")),
      ctr_busy_cycles_(stats_.counter("busy_cycles")),
      ctr_bursts_(stats_.counter("bursts")),
      ctr_refresh_collisions_(stats_.counter("refresh_collisions")) {
  HULKV_CHECK(config.num_buses == 1 || config.num_buses == 2,
              "HyperRAM controller exposes 1 or 2 HyperBUS interfaces");
  HULKV_CHECK(config.chips_per_bus >= 1, "need at least one chip select");
  HULKV_CHECK(config.clk_div >= 1, "bus clock divider must be >= 1");
  HULKV_CHECK(config.max_burst_bytes >= 2, "burst must carry data");
}

Cycles HyperRamModel::access(Cycles now, Addr addr, u32 bytes,
                             bool is_write) {
  HULKV_CHECK(bytes > 0, "zero-length HyperRAM access");
  (is_write ? ctr_writes_ : ctr_reads_) += 1;
  (is_write ? ctr_bytes_written_ : ctr_bytes_read_) += bytes;
  const u64 bursts_before = ctr_bursts_;
  const u64 refresh_before = ctr_refresh_collisions_;

  // With 2 interleaved buses, a chip-select window covers a pair of chips.
  const u64 cs_window = config_.chip_bytes * config_.num_buses;
  // Addresses are relative to the external-memory base as seen by the
  // controller; only the offset inside the memory matters for CS demux.
  u64 offset = addr % config_.total_bytes();

  Cycles t = std::max(now, busy_until_);
  const Cycles start = t;
  u32 remaining = bytes;
  while (remaining > 0) {
    const u64 to_cs_end = cs_window - (offset % cs_window);
    const u32 chunk = static_cast<u32>(std::min<u64>(
        {remaining, to_cs_end, config_.max_burst_bytes}));
    t = burst(t, chunk, is_write);
    offset += chunk;
    remaining -= chunk;
  }
  busy_until_ = t;
  ctr_busy_cycles_ += t - start;
  if (trace::enabled()) {
    auto& sink = trace::sink();
    trace::XactArg xarg;
    xarg.write = is_write;
    xarg.bursts = static_cast<u32>(ctr_bursts_ - bursts_before);
    xarg.refresh_collisions =
        static_cast<u32>(ctr_refresh_collisions_ - refresh_before);
    sink.complete(sink.resolve(trace_track_, stats_.name()),
                  trace::Ev::kMemXact, start, t, bytes,
                  trace::pack_xact_arg(xarg));
  }
  return t;
}

Cycles HyperRamModel::burst(Cycles start, u32 bytes, bool is_write) {
  ctr_bursts_ += 1;
  u32 bus_clocks = config_.t_cmd_bus_clk + config_.t_access_bus_clk;

  // Refresh collision: if this burst begins past the next refresh slot,
  // the device inserts an extra initial-latency window (the HyperBUS
  // "2x latency" case signalled by RWDS during CA).
  if (start >= next_refresh_) {
    bus_clocks += config_.refresh_extra_bus_clk;
    ctr_refresh_collisions_ += 1;
    if (trace::enabled()) {
      auto& sink = trace::sink();
      sink.instant(
          sink.resolve(trace_track_, stats_.name()),
          trace::Ev::kRefreshCollision, start,
          static_cast<Cycles>(config_.refresh_extra_bus_clk) * config_.clk_div);
    }
    while (next_refresh_ <= start) next_refresh_ += config_.refresh_period;
  }

  // Data phase: 8-bit DDR = 2 bytes per bus clock per bus.
  const u32 bytes_per_clk = 2 * config_.num_buses;
  bus_clocks += static_cast<u32>(ceil_div(bytes, bytes_per_clk));
  (void)is_write;  // reads and writes share the bus timing

  return start + static_cast<Cycles>(bus_clocks) * config_.clk_div;
}

void HyperRamModel::reset() {
  busy_until_ = 0;
  next_refresh_ = config_.refresh_period;
  stats_.reset();
}

void HyperRamModel::serialize(snapshot::Archive& ar) {
  ar.pod(busy_until_);
  ar.pod(next_refresh_);
  stats_.serialize(ar);
}

}  // namespace hulkv::mem
