#include "mem/cache.hpp"

#include <algorithm>

#include "common/bitutil.hpp"

namespace hulkv::mem {

SetAssocTags::SetAssocTags(u32 num_sets, u32 num_ways, u32 line_bytes)
    : num_sets_(num_sets), num_ways_(num_ways), line_bytes_(line_bytes) {
  HULKV_CHECK(is_pow2(num_sets), "cache sets must be a power of two");
  HULKV_CHECK(is_pow2(line_bytes), "cache line size must be a power of two");
  HULKV_CHECK(num_ways >= 1, "cache needs at least one way");
  ways_.resize(static_cast<size_t>(num_sets) * num_ways);
}

u32 SetAssocTags::set_index(Addr addr) const {
  return static_cast<u32>((addr / line_bytes_) & (num_sets_ - 1));
}

u64 SetAssocTags::tag_of(Addr addr) const {
  return addr / line_bytes_ / num_sets_;
}

SetAssocTags::Way* SetAssocTags::find(Addr addr) {
  const u64 tag = tag_of(addr);
  Way* base = &ways_[static_cast<size_t>(set_index(addr)) * num_ways_];
  for (u32 w = 0; w < num_ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const SetAssocTags::Way* SetAssocTags::find(Addr addr) const {
  return const_cast<SetAssocTags*>(this)->find(addr);
}

bool SetAssocTags::lookup(Addr addr) {
  if (Way* way = find(addr)) {
    way->lru = ++use_clock_;
    return true;
  }
  return false;
}

bool SetAssocTags::probe(Addr addr) const { return find(addr) != nullptr; }

SetAssocTags::Victim SetAssocTags::fill(Addr addr) {
  Victim victim;
  Way* base = &ways_[static_cast<size_t>(set_index(addr)) * num_ways_];
  Way* slot = nullptr;
  for (u32 w = 0; w < num_ways_; ++w) {
    if (!base[w].valid) {
      slot = &base[w];
      break;
    }
  }
  if (slot == nullptr) {
    slot = &base[0];
    for (u32 w = 1; w < num_ways_; ++w) {
      if (base[w].lru < slot->lru) slot = &base[w];
    }
    victim.valid = true;
    victim.dirty = slot->dirty;
    // Reconstruct the victim's base address from its tag and this set.
    victim.line_addr =
        (slot->tag * num_sets_ + set_index(addr)) * line_bytes_;
  }
  slot->tag = tag_of(addr);
  slot->valid = true;
  slot->dirty = false;
  slot->lru = ++use_clock_;
  return victim;
}

void SetAssocTags::mark_dirty(Addr addr) {
  Way* way = find(addr);
  HULKV_CHECK(way != nullptr, "mark_dirty on absent line");
  way->dirty = true;
}

bool SetAssocTags::line_dirty(Addr addr) const {
  const Way* way = find(addr);
  return way != nullptr && way->dirty;
}

void SetAssocTags::flush() {
  for (Way& way : ways_) way = Way{};
  use_clock_ = 0;
}

void SetAssocTags::reset() { flush(); }

void SetAssocTags::serialize(snapshot::Archive& ar) {
  ar.pod(use_clock_);
  // Field by field: Way has padding bytes, which must never reach the
  // digest or the file.
  for (Way& way : ways_) {
    ar.pod(way.tag);
    ar.pod(way.lru);
    ar.pod(way.valid);
    ar.pod(way.dirty);
  }
}

void CacheModel::reset() {
  tags_.reset();
  stats_.reset();
  pending_hits_ = 0;
}

void CacheModel::serialize(snapshot::Archive& ar) {
  tags_.serialize(ar);
  stats_.serialize(ar);
  ar.pod(pending_hits_);
}

CacheModel::CacheModel(const CacheConfig& config, MemTiming* next)
    : config_(config),
      next_(next),
      tags_(config.size_bytes / config.line_bytes / config.ways, config.ways,
            config.line_bytes),
      stats_(config.name),
      ctr_reads_(stats_.counter("reads")),
      ctr_writes_(stats_.counter("writes")),
      ctr_hits_(stats_.counter("hits")),
      ctr_misses_(stats_.counter("misses")),
      ctr_writebacks_(stats_.counter("writebacks")),
      ctr_wt_words_(stats_.counter("writethrough_words")) {
  HULKV_CHECK(next != nullptr, "cache needs a next-level timing model");
  HULKV_CHECK(config.size_bytes % (config.line_bytes * config.ways) == 0,
              "cache size must be a multiple of line_bytes * ways");
}

/// L1 hits are batched: one counter event per kHitBatchSize hits keeps
/// the trace small while the windowed activity curve stays usable.
namespace {
constexpr u32 kHitBatchSize = 256;
}  // namespace

void CacheModel::trace_hit(Cycles now) {
  if (++pending_hits_ < kHitBatchSize) return;
  auto& sink = trace::sink();
  sink.counter(sink.resolve(trace_track_, stats_.name()),
               trace::Ev::kHitBatch, now, pending_hits_);
  pending_hits_ = 0;
}

Cycles CacheModel::access(Cycles now, Addr addr, u32 bytes, bool is_write) {
  // Split accesses that straddle a line boundary (rare; the ISS only
  // issues naturally aligned scalar accesses, but the DMA engines may not).
  const Addr first_line = tags_.line_of(addr);
  const Addr last_line = tags_.line_of(addr + bytes - 1);
  Cycles done = now;
  for (Addr line = first_line; line <= last_line;
       line += config_.line_bytes) {
    done = access_line(done, line, is_write);
  }
  return done;
}

Cycles CacheModel::access_line(Cycles now, Addr line_addr, bool is_write) {
  (is_write ? ctr_writes_ : ctr_reads_) += 1;
  const bool hit = tags_.lookup(line_addr);

  if (hit) {
    ctr_hits_ += 1;
    if (trace::enabled()) trace_hit(now);
    if (is_write) {
      if (config_.write_through) {
        // Forward the word to the next level; the store buffer absorbs the
        // latency so the core sees only the hit latency, but the next
        // level's occupancy advances (bandwidth is consumed). The core
        // never waits for it, so the profiler must not claim it either.
        const profile::SuppressGuard mute;
        next_->access(now, line_addr, 8, /*is_write=*/true);
        ctr_wt_words_ += 1;
      } else {
        tags_.mark_dirty(line_addr);
      }
    }
    return now + config_.hit_latency;
  }

  ctr_misses_ += 1;
  if (trace::enabled()) {
    auto& sink = trace::sink();
    sink.instant(sink.resolve(trace_track_, stats_.name()),
                 trace::Ev::kMiss, now, line_addr, is_write ? 1 : 0);
  }
  if (is_write && !config_.write_allocate) {
    // Write miss, no allocate: forward the write downstream.
    const profile::SuppressGuard mute;
    const Cycles done = next_->access(now, line_addr, 8, /*is_write=*/true);
    ctr_wt_words_ += 1;
    // The store buffer hides the downstream latency from the core.
    (void)done;
    return now + config_.hit_latency;
  }

  // Refill (and evict a dirty victim first for write-back caches).
  // Attribution: nested levels (LLC, external memory) claim their share
  // of the refill chain below; the leftover span is this cache's own
  // miss handling and lands on config_.profile_reason.
  const u64 claimed_before = profile::claimed();
  const SetAssocTags::Victim victim = tags_.fill(line_addr);
  Cycles t = now + config_.hit_latency;  // tag lookup before the miss
  if (victim.valid && victim.dirty) {
    ctr_writebacks_ += 1;
    if (trace::enabled()) {
      auto& sink = trace::sink();
      sink.instant(sink.resolve(trace_track_, stats_.name()),
                   trace::Ev::kWriteback, t, victim.line_addr);
    }
    t = next_->access(t, victim.line_addr, config_.line_bytes,
                      /*is_write=*/true);
  }
  t = next_->access(t, line_addr, config_.line_bytes, /*is_write=*/false);
  t += config_.fill_penalty;
  if (is_write) {
    if (config_.write_through) {
      const profile::SuppressGuard mute;
      next_->access(t, line_addr, 8, /*is_write=*/true);
      ctr_wt_words_ += 1;
    } else {
      tags_.mark_dirty(line_addr);
    }
  }
  profile::add(config_.profile_reason,
               profile::own_share(t - now, profile::claimed() - claimed_before));
  return t;
}

double CacheModel::hit_ratio() const {
  const u64 total = stats_.get("reads") + stats_.get("writes");
  return total == 0 ? 0.0 : static_cast<double>(stats_.get("hits")) /
                                static_cast<double>(total);
}

}  // namespace hulkv::mem
