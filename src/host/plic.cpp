#include "host/plic.hpp"

#include "common/types.hpp"

namespace hulkv::host {

void Plic::raise(u32 source) {
  HULKV_CHECK(source >= 1 && source <= kNumSources, "bad PLIC source");
  pending_ |= (u64{1} << source);
}

void Plic::clear(u32 source) {
  HULKV_CHECK(source >= 1 && source <= kNumSources, "bad PLIC source");
  pending_ &= ~(u64{1} << source);
}

bool Plic::interrupt_pending() const {
  return (pending_ & enabled_ & ~claimed_) != 0;
}

u32 Plic::highest_pending() const {
  const u64 ready = pending_ & enabled_ & ~claimed_;
  u32 best = 0;
  u32 best_priority = 0;
  for (u32 src = 1; src <= kNumSources; ++src) {
    if ((ready & (u64{1} << src)) != 0 && priority_[src] >= best_priority) {
      best = src;
      best_priority = priority_[src];
    }
  }
  return best;
}

u64 Plic::mmio_read(Addr offset, u32 size) {
  (void)size;
  if (offset == kPendingOffset) return pending_;
  if (offset == kEnableOffset) return enabled_;
  if (offset == kClaimOffset) {
    const u32 src = highest_pending();
    if (src != 0) claimed_ |= (u64{1} << src);
    return src;
  }
  if (offset < kPendingOffset && offset % 4 == 0) {
    const u32 src = static_cast<u32>(offset / 4);
    if (src >= 1 && src <= kNumSources) return priority_[src];
  }
  return 0;
}

void Plic::mmio_write(Addr offset, u64 value, u32 size) {
  (void)size;
  if (offset == kEnableOffset) {
    enabled_ = value;
    return;
  }
  if (offset == kClaimOffset) {
    // Complete: un-claim and clear the source.
    const u32 src = static_cast<u32>(value);
    if (src >= 1 && src <= kNumSources) {
      claimed_ &= ~(u64{1} << src);
      pending_ &= ~(u64{1} << src);
    }
    return;
  }
  if (offset < kPendingOffset && offset % 4 == 0) {
    const u32 src = static_cast<u32>(offset / 4);
    if (src >= 1 && src <= kNumSources) priority_[src] = static_cast<u32>(value);
  }
}

}  // namespace hulkv::host
