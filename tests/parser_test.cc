// Text-assembler tests, including the disasm -> parse -> encode
// round-trip property over the full operation set.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/soc.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/encoding_table.hpp"
#include "isa/parser.hpp"
#include "kernels/kernel.hpp"

namespace hulkv::isa {
namespace {

using detail::Fmt;

Instr random_instr(const detail::EncInfo& info, Xoshiro256& rng) {
  Instr in;
  in.op = info.op;
  in.rd = static_cast<u8>(rng.next_below(32));
  in.rs1 = static_cast<u8>(rng.next_below(32));
  in.rs2 = static_cast<u8>(rng.next_below(32));
  in.rs3 = static_cast<u8>(rng.next_below(32));
  switch (info.fmt) {
    case Fmt::kI:
    case Fmt::kS:
      in.imm = static_cast<i32>(rng.next_range(-2048, 2047));
      break;
    case Fmt::kShamt:
      in.imm = static_cast<i32>(rng.next_below(info.opcode == 0x13 ? 64 : 32));
      break;
    case Fmt::kB:
      in.imm = static_cast<i32>(rng.next_range(-1024, 1023)) * 2;
      break;
    case Fmt::kU:
      in.imm = static_cast<i32>(rng.next_below(1u << 20) << 12);
      break;
    case Fmt::kJ:
      in.imm = static_cast<i32>(rng.next_range(-(1 << 18), (1 << 18))) * 2;
      break;
    case Fmt::kCsr:
      in.imm = static_cast<i32>(rng.next_below(0x1000));
      break;
    case Fmt::kCsrImm:
      in.imm = static_cast<i32>(rng.next_below(0x1000));
      in.rs1 = static_cast<u8>(rng.next_below(32));  // uimm5
      break;
    default:
      break;
  }
  if (info.fmt == Fmt::kRUnary) in.rs2 = 0;
  if (info.fmt == Fmt::kSys) in.rd = in.rs1 = in.rs2 = 0;
  return in;
}

TEST(Parser, DisasmParseRoundTripAllOps) {
  Xoshiro256 rng(404);
  for (const auto& info : detail::encoding_table()) {
    for (int trial = 0; trial < 16; ++trial) {
      const Instr in = random_instr(info, rng);
      const u32 want = encode(in);
      const std::string text = disasm(in);
      std::vector<u32> words;
      ASSERT_NO_THROW(words = parse_program(text, 0, true))
          << mnemonic(info.op) << ": '" << text << "'";
      ASSERT_EQ(words.size(), 1u) << text;
      EXPECT_EQ(words[0], want)
          << mnemonic(info.op) << ": '" << text << "' -> "
          << disasm_word(words[0]);
    }
  }
}

TEST(Parser, AbiNamesAndComments) {
  const auto words = parse_program(R"(
      # whole-line comment
      addi t0, zero, 5     // trailing comment
      add  a0, t0, sp
      sw   a0, -8(fp)      # fp == s0 == x8
  )",
                                   0, true);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(disasm_word(words[0]), "addi x5, x0, 5");
  EXPECT_EQ(disasm_word(words[1]), "add x10, x5, x2");
  EXPECT_EQ(disasm_word(words[2]), "sw x10, -8(x8)");
}

TEST(Parser, LabelsAndPseudos) {
  const auto words = parse_program(R"(
      li   t0, 3
      li   t1, 0
    loop:
      addi t1, t1, 2
      addi t0, t0, -1
      bnez t0, loop
      mv   a0, t1
      ret
  )",
                                   0x1000, true);
  ASSERT_GE(words.size(), 7u);
  // The backward branch resolves to the loop label.
  const Instr branch = decode(words[4]);
  EXPECT_EQ(branch.op, Op::kBne);
  EXPECT_EQ(branch.imm, -8);
}

TEST(Parser, FullProgramRunsOnTheHost) {
  // Sum 1..100 written as text assembly, executed on the CVA6 ISS.
  core::SocConfig cfg;
  cfg.main_memory = core::MainMemoryKind::kDdr4;
  core::HulkVSoc soc(cfg);
  const auto program = parse_program(R"(
      li   a0, 0
      li   t0, 1
      li   t1, 101
    loop:
      add  a0, a0, t0
      addi t0, t0, 1
      blt  t0, t1, loop
      li   a7, 93
      ecall
  )",
                                     core::layout::kHostCodeBase, true);
  EXPECT_EQ(kernels::run_host_program(soc, program, {}).exit_code, 5050u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_program("nop\nbogus x1, x2\n", 0, true);
    FAIL() << "expected a SimError";
  } catch (const SimError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
  EXPECT_THROW(parse_program("addi x1, x2\n", 0, true), SimError);  // arity
  EXPECT_THROW(parse_program("addi q1, x2, 3\n", 0, true), SimError);
  EXPECT_THROW(parse_program("lw x1, nope(x2)\n", 0, true), SimError);
  EXPECT_THROW(parse_program("beq x1, x2, nowhere\n", 0, true), SimError);
}

TEST(Parser, HexAndNegativeImmediates) {
  const auto words =
      parse_program("xori a0, a1, -1\nlui t0, 0xFEDCB\n", 0, true);
  const Instr x = decode(words[0]);
  EXPECT_EQ(x.imm, -1);
  const Instr lui = decode(words[1]);
  EXPECT_EQ(static_cast<u32>(lui.imm), 0xFEDCB000u);
}

TEST(Parser, CharacterLiterals) {
  const auto words = parse_program("li t0, 'A'\n", 0, true);
  const Instr li = decode(words[0]);
  EXPECT_EQ(li.op, Op::kAddi);
  EXPECT_EQ(li.imm, 'A');
}

TEST(Parser, PcRelativeBranchLiterals) {
  const auto words = parse_program("beq x1, x2, pc+16\njal x1, pc-4\n", 0,
                                   true);
  EXPECT_EQ(decode(words[0]).imm, 16);
  EXPECT_EQ(decode(words[1]).imm, -4);
}

}  // namespace
}  // namespace hulkv::isa
