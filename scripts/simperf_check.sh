#!/usr/bin/env bash
# Simulator-performance regression gate: re-run the bench/simperf ISS
# throughput benchmarks and compare instr/s against the checked-in
# baseline (BENCH_simperf.json, captured by scripts/simperf_baseline.sh).
# Fails when a benchmark's throughput drops more than the threshold
# (default 20%) below the baseline. Wired up as `make simperf-check`.
#
# Usage: scripts/simperf_check.sh [baseline.json]
#   SIMPERF_THRESHOLD_PCT=20   allowed regression in percent
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build}"
baseline="${1:-$repo_root/BENCH_simperf.json}"
threshold="${SIMPERF_THRESHOLD_PCT:-20}"

if [ ! -f "$baseline" ]; then
  echo "error: baseline $baseline not found." >&2
  echo "Capture one with scripts/simperf_baseline.sh and commit it." >&2
  exit 1
fi
if [ ! -x "$build_dir/bench/simperf" ]; then
  echo "error: $build_dir/bench/simperf not found. Build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

fresh="$(mktemp /tmp/simperf_check.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT

# Same shape as the baseline run: medians over 3 repetitions, filtered
# to the ISS throughput loops (the benches this gate guards).
"$build_dir/bench/simperf" \
  --benchmark_filter='BM_(Host|Cluster)IssLoop' \
  --benchmark_out="$fresh" \
  --benchmark_out_format=json \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true > /dev/null

python3 - "$baseline" "$fresh" "$threshold" << 'EOF'
import json
import sys

baseline_path, fresh_path, threshold = sys.argv[1], sys.argv[2], float(sys.argv[3])

def instr_rates(path):
    """{benchmark name: median instr/s} from a google-benchmark JSON."""
    with open(path) as f:
        data = json.load(f)
    rates = {}
    for run in data.get("benchmarks", []):
        if run.get("aggregate_name", "") not in ("", "median"):
            continue
        rate = run.get("instr/s")
        if rate is None:
            continue
        name = run["run_name"] if "run_name" in run else run["name"]
        # Prefer the median aggregate over any raw repetition rows.
        if run.get("aggregate_name") == "median" or name not in rates:
            rates[name] = rate
    return rates

base = instr_rates(baseline_path)
fresh = instr_rates(fresh_path)
if not base:
    sys.exit(f"no instr/s entries in baseline {baseline_path}")

status = 0
for name, base_rate in sorted(base.items()):
    if name not in fresh:
        continue  # bench filtered out of this check run
    fresh_rate = fresh[name]
    delta_pct = (fresh_rate / base_rate - 1.0) * 100.0
    verdict = "ok"
    if delta_pct < -threshold:
        verdict = f"REGRESSION (allowed -{threshold:.0f}%)"
        status = 1
    print(f"{name}: baseline {base_rate:,.0f} instr/s, "
          f"now {fresh_rate:,.0f} instr/s ({delta_pct:+.1f}%) {verdict}")

if status:
    print("simperf_check: FAILED")
else:
    print("simperf_check: OK")
sys.exit(status)
EOF
