// Call graph over an analyzed image and the per-function summaries the
// interprocedural passes export (DESIGN.md §13).
//
// Functions are discovered syntactically: the image entry point plus
// every in-image target of a linking `jal` (rd != x0). An indirect call
// (`jalr` with a link register) has an unknown callee, which taints the
// caller's summary conservatively. Summaries are computed bottom-up to
// a fixpoint, so mutual recursion converges (monotone joins over the
// footprint/effect lattice) and a recursive cycle is simply reported as
// `recursive` with the join of its members' effects.
#pragma once

#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/footprint.hpp"

namespace hulkv::analysis {

class FactsTable;

/// Interprocedural summary of one function: its own blocks' effects
/// joined with every (transitive) callee's.
struct FuncSummary {
  Addr entry = 0;                // entry address at the analysis base
  std::vector<size_t> blocks;    // intraprocedural block ids (CFG)
  std::vector<Addr> callees;     // direct callee entries (deduplicated)
  bool has_indirect_call = false;  // jalr call: callee set unknown
  bool recursive = false;          // on a call-graph cycle
  bool may_access_memory = false;
  bool may_ecall = false;
  /// No memory, no ecall/trap anywhere in the function or its callees.
  bool pure = false;
  /// All accesses (incl. callees') proven inside the TCDM window.
  bool tcdm_local = false;
  RangeSet footprint;            // joined over blocks and callees
};

/// Build the call graph of `cfg` and compute per-function summaries
/// from `facts`' per-block tables. functions[0] is the image entry.
std::vector<FuncSummary> build_callgraph(const Cfg& cfg,
                                         const FactsTable& facts);

}  // namespace hulkv::analysis
