// Power-over-time from windowed trace activity.
//
// The whole-run energy pipeline (energy.hpp) collapses a run into one
// average activity factor per block. With tracing enabled we can do what
// the SystemC-AMS/ISS power-modeling literature does: split the run into
// fixed windows, derive per-window activity from the event stream, and
// evaluate the same power model per window. The per-window activities
// are normalised so that the time-integral of the resulting power curve
// equals the whole-run energy *exactly* (compute_energy is linear in the
// activity factors), which trace_test asserts to <0.1%.
#pragma once

#include <vector>

#include "power/energy.hpp"
#include "trace/trace.hpp"

namespace hulkv::power {

/// One window of the power curve.
struct PowerSample {
  Cycles start = 0;
  Cycles duration = 0;
  double host_mw = 0;
  double cluster_mw = 0;
  double soc_mw = 0;
  double mem_ctrl_mw = 0;
  double mem_device_mw = 0;
  double total_mw = 0;
  double energy_mj = 0;  // total energy of this window
};

/// Build the power curve for `[0, whole_run.duration)` in windows of
/// `window_cycles`, distributing the whole-run activity factors over the
/// windows proportionally to traced activity:
///   - host:    overlap of `run` intervals on the "cva6" track,
///   - cluster: overlap of `run` intervals on the "pmca_core*" tracks,
///   - memory:  busy overlap of `mem_xact` intervals on the device
///              tracks ("hyperram"/"ddr4"/"rpcdram"),
///   - soc:     uniform (no tracked proxy).
/// Blocks with no traced activity fall back to a uniform split, so the
/// integral matches compute_energy(whole_run, ...) in every case.
std::vector<PowerSample> power_over_time(const trace::TraceSink& sink,
                                         const RunActivity& whole_run,
                                         const PowerModel& model,
                                         const core::FrequencyPlan& freq,
                                         Cycles window_cycles);

}  // namespace hulkv::power
